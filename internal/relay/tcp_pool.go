package relay

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// PooledTCPTransport is a TCP transport that reuses connections per relay
// address, amortizing the dial cost the per-request transport pays (see
// BenchmarkP5TransportRTT). A connection carries one request/response at a
// time; checkout from the pool guarantees exclusivity. A send that fails on
// a reused connection is retried once on a fresh one, since the failure is
// usually a peer that closed an idle connection.
type PooledTCPTransport struct {
	// DialTimeout bounds connection establishment. Zero means 5s.
	DialTimeout time.Duration
	// IOTimeout bounds each request round-trip. Zero means 30s.
	IOTimeout time.Duration
	// MaxIdlePerAddr bounds pooled connections per address. Zero means 4.
	MaxIdlePerAddr int

	mu     sync.Mutex
	idle   map[string][]net.Conn
	closed bool
}

var _ Transport = (*PooledTCPTransport)(nil)

// Send implements Transport.
func (t *PooledTCPTransport) Send(ctx context.Context, addr string, env *wire.Envelope) (*wire.Envelope, error) {
	payload := env.Marshal()
	conn, reused, err := t.checkout(ctx, addr)
	if err != nil {
		return nil, err
	}
	reply, err := t.roundTrip(ctx, conn, payload)
	if err != nil {
		conn.Close()
		// The stale-connection retry redials the SAME address, so the
		// resend reaches the same relay process: queries and pings are
		// idempotent outright, invokes are deduplicated there by request
		// ID (handleInvoke replay cache), and subscribes are idempotent by
		// subscription ID. Only events stay excluded — a resent MsgEvent
		// would be delivered to the subscriber twice.
		if !reused || ctx.Err() != nil || env.Type == wire.MsgEvent {
			return nil, wrapCtxErr(ctx, err)
		}
		firstErr := err
		// The pooled connection may have gone stale; retry once fresh.
		conn, _, err = t.dial(ctx, addr)
		if err != nil {
			// Do NOT surface the dial failure's ErrUnreachable here: the
			// first round-trip may already have delivered the envelope, so
			// an at-most-once caller (sendAtMostOnce) must not read this
			// as "provably never delivered" and fail over to another
			// relay. Return the original round-trip error instead.
			return nil, wrapCtxErr(ctx, firstErr)
		}
		reply, err = t.roundTrip(ctx, conn, payload)
		if err != nil {
			conn.Close()
			return nil, wrapCtxErr(ctx, err)
		}
	}
	t.checkin(addr, conn)
	return reply, nil
}

func (t *PooledTCPTransport) roundTrip(ctx context.Context, conn net.Conn, payload []byte) (*wire.Envelope, error) {
	ioTimeout := t.IOTimeout
	if ioTimeout <= 0 {
		ioTimeout = 30 * time.Second
	}
	if err := conn.SetDeadline(ioDeadline(ctx, ioTimeout)); err != nil {
		return nil, fmt.Errorf("relay: set deadline: %w", err)
	}
	// Started after SetDeadline so a racing cancellation cannot have its
	// forced past-deadline overwritten.
	stop := watchCancel(ctx, conn)
	defer stop()
	if err := wire.WriteFrame(conn, payload); err != nil {
		return nil, fmt.Errorf("relay: send: %w", err)
	}
	frame, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("relay: reply: %w", err)
	}
	reply, err := wire.UnmarshalEnvelope(frame)
	if err != nil {
		return nil, fmt.Errorf("relay: reply: %w", err)
	}
	return reply, nil
}

func (t *PooledTCPTransport) checkout(ctx context.Context, addr string) (conn net.Conn, reused bool, err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, fmt.Errorf("%w: transport closed", ErrUnreachable)
	}
	if conns := t.idle[addr]; len(conns) > 0 {
		conn = conns[len(conns)-1]
		t.idle[addr] = conns[:len(conns)-1]
		t.mu.Unlock()
		return conn, true, nil
	}
	t.mu.Unlock()
	return t.dial(ctx, addr)
}

func (t *PooledTCPTransport) dial(ctx context.Context, addr string) (net.Conn, bool, error) {
	dialTimeout := t.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	dialer := &net.Dialer{Timeout: dialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %s: %w", ErrUnreachable, addr, err)
	}
	return conn, false, nil
}

func (t *PooledTCPTransport) checkin(addr string, conn net.Conn) {
	maxIdle := t.MaxIdlePerAddr
	if maxIdle <= 0 {
		maxIdle = 4
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || len(t.idle[addr]) >= maxIdle {
		conn.Close()
		return
	}
	if t.idle == nil {
		t.idle = make(map[string][]net.Conn)
	}
	t.idle[addr] = append(t.idle[addr], conn)
}

// Close releases every pooled connection; subsequent Sends fail.
func (t *PooledTCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	for _, conns := range t.idle {
		for _, c := range conns {
			c.Close()
		}
	}
	t.idle = nil
}
