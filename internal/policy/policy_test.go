package policy

import (
	"testing"
)

func TestRuleMatchesExact(t *testing.T) {
	// The paper's example rule (§4.3).
	r := AccessRule{Network: "we-trade", Org: "seller-org", Chaincode: "TradeLensCC", Function: "GetBillOfLading"}
	if !r.Matches("we-trade", "seller-org", "TradeLensCC", "GetBillOfLading") {
		t.Fatal("exact match failed")
	}
	if r.Matches("we-trade", "seller-org", "TradeLensCC", "GetShipment") {
		t.Fatal("different function matched")
	}
	if r.Matches("other-net", "seller-org", "TradeLensCC", "GetBillOfLading") {
		t.Fatal("different network matched")
	}
}

func TestRuleWildcards(t *testing.T) {
	r := AccessRule{Network: "we-trade", Org: Wildcard, Chaincode: "TradeLensCC", Function: Wildcard}
	if !r.Matches("we-trade", "any-org", "TradeLensCC", "AnyFn") {
		t.Fatal("wildcard match failed")
	}
	if r.Matches("we-trade", "any-org", "OtherCC", "AnyFn") {
		t.Fatal("wildcard over-matched")
	}
}

func TestRuleValidate(t *testing.T) {
	good := AccessRule{Network: "n", Org: "o", Chaincode: "c", Function: "f"}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, bad := range []AccessRule{
		{Org: "o", Chaincode: "c", Function: "f"},
		{Network: "n", Chaincode: "c", Function: "f"},
		{Network: "n", Org: "o", Function: "f"},
		{Network: "n", Org: "o", Chaincode: "c"},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("rule %+v validated", bad)
		}
	}
}

func TestRuleMarshalRoundTrip(t *testing.T) {
	r := AccessRule{Network: "n", Org: "o", Chaincode: "c", Function: "f"}
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalAccessRule(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got != r {
		t.Fatalf("round-trip: %+v", got)
	}
	if _, err := UnmarshalAccessRule([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRuleString(t *testing.T) {
	r := AccessRule{Network: "we-trade", Org: "seller-org", Chaincode: "cc", Function: "fn"}
	if r.String() != "<we-trade, seller-org, cc, fn>" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestRuleSetPermits(t *testing.T) {
	var s RuleSet
	if s.Permits("n", "o", "c", "f") {
		t.Fatal("empty rule set permits")
	}
	if err := s.Add(AccessRule{Network: "n", Org: "o", Chaincode: "c", Function: "f"}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !s.Permits("n", "o", "c", "f") {
		t.Fatal("added rule not honored")
	}
	if s.Permits("n", "other", "c", "f") {
		t.Fatal("non-matching request permitted")
	}
}

func TestRuleSetAddDedupAndRemove(t *testing.T) {
	var s RuleSet
	r := AccessRule{Network: "n", Org: "o", Chaincode: "c", Function: "f"}
	_ = s.Add(r)
	_ = s.Add(r)
	if len(s.Rules) != 1 {
		t.Fatalf("dedup failed: %d rules", len(s.Rules))
	}
	if !s.Remove(r) {
		t.Fatal("Remove returned false")
	}
	if s.Remove(r) {
		t.Fatal("double remove returned true")
	}
	if s.Permits("n", "o", "c", "f") {
		t.Fatal("removed rule still permits")
	}
}

func TestRuleSetAddInvalid(t *testing.T) {
	var s RuleSet
	if err := s.Add(AccessRule{}); err == nil {
		t.Fatal("invalid rule added")
	}
}

func TestVerificationPolicyValidate(t *testing.T) {
	good := VerificationPolicy{Network: "tradelens", Expr: "AND('seller-org','carrier-org')"}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := (VerificationPolicy{Expr: "'a'"}).Validate(); err == nil {
		t.Fatal("empty network accepted")
	}
	if err := (VerificationPolicy{Network: "n", Expr: "AND("}).Validate(); err == nil {
		t.Fatal("bad expression accepted")
	}
}

func TestVerificationPolicyCompile(t *testing.T) {
	p := VerificationPolicy{Network: "tl", Expr: "AND('a','b')"}
	compiled, err := p.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	orgs := compiled.Orgs()
	if len(orgs) != 2 {
		t.Fatalf("Orgs = %v", orgs)
	}
}

func TestVerificationPolicyMarshalRoundTrip(t *testing.T) {
	p := VerificationPolicy{Network: "tl", Chaincode: "TradeLensCC", Expr: "'a'"}
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalVerificationPolicy(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got != p {
		t.Fatalf("round-trip: %+v", got)
	}
}

func BenchmarkPermits(b *testing.B) {
	var s RuleSet
	for i := 0; i < 50; i++ {
		_ = s.Add(AccessRule{Network: "n", Org: string(rune('a' + i%26)), Chaincode: "c", Function: "f"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Permits("n", "z", "c", "f")
	}
}
