// Package policy implements the two policy stores the paper's system
// contracts enforce (§3.2, §4.3):
//
//   - Access-control rules in the source network, each a
//     <network ID, organization ID, chaincode name, chaincode function>
//     tuple stating that members of a foreign network's organization may
//     invoke a local chaincode function. The Exposure Control contract
//     consults these on every incoming relay query.
//
//   - Verification policies in the destination network, stating which
//     source-network organizations must attest a proof before the Data
//     Acceptance contract will admit the data. Verification policies use
//     the same expression language as endorsement policies.
package policy

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/endorsement"
	"repro/internal/msp"
)

// Wildcard matches any value in an access rule position.
const Wildcard = "*"

// ErrInvalidRule is returned for rules with empty fields.
var ErrInvalidRule = errors.New("policy: invalid access rule")

// AccessRule permits an organization of a foreign network to invoke one
// local chaincode function. Any field may be the "*" wildcard.
type AccessRule struct {
	Network   string `json:"network"`
	Org       string `json:"org"`
	Chaincode string `json:"chaincode"`
	Function  string `json:"function"`
}

// Validate checks that no field is empty.
func (r AccessRule) Validate() error {
	if r.Network == "" || r.Org == "" || r.Chaincode == "" || r.Function == "" {
		return fmt.Errorf("%w: %+v", ErrInvalidRule, r)
	}
	return nil
}

// Matches reports whether the rule covers the given request.
func (r AccessRule) Matches(network, org, chaincodeName, function string) bool {
	return matchField(r.Network, network) &&
		matchField(r.Org, org) &&
		matchField(r.Chaincode, chaincodeName) &&
		matchField(r.Function, function)
}

func matchField(pattern, value string) bool {
	return pattern == Wildcard || pattern == value
}

// String renders the rule in the paper's tuple notation.
func (r AccessRule) String() string {
	return fmt.Sprintf("<%s, %s, %s, %s>", r.Network, r.Org, r.Chaincode, r.Function)
}

// Marshal encodes the rule for ledger storage.
func (r AccessRule) Marshal() ([]byte, error) {
	return json.Marshal(r)
}

// UnmarshalAccessRule decodes a stored rule.
func UnmarshalAccessRule(data []byte) (AccessRule, error) {
	var r AccessRule
	if err := json.Unmarshal(data, &r); err != nil {
		return AccessRule{}, fmt.Errorf("policy: unmarshal access rule: %w", err)
	}
	return r, nil
}

// RuleSet is an ordered collection of access rules.
type RuleSet struct {
	Rules []AccessRule `json:"rules"`
}

// Permits reports whether any rule covers the request.
func (s *RuleSet) Permits(network, org, chaincodeName, function string) bool {
	for _, r := range s.Rules {
		if r.Matches(network, org, chaincodeName, function) {
			return true
		}
	}
	return false
}

// Add appends a rule after validation, deduplicating exact repeats.
func (s *RuleSet) Add(r AccessRule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	for _, existing := range s.Rules {
		if existing == r {
			return nil
		}
	}
	s.Rules = append(s.Rules, r)
	return nil
}

// Remove deletes an exact rule, reporting whether it was present.
func (s *RuleSet) Remove(r AccessRule) bool {
	for i, existing := range s.Rules {
		if existing == r {
			s.Rules = append(s.Rules[:i], s.Rules[i+1:]...)
			return true
		}
	}
	return false
}

// VerificationPolicy states the attestation requirement a destination
// network imposes on data from one source network. Policies can be scoped
// to a chaincode; an empty Chaincode is the network-wide default.
type VerificationPolicy struct {
	Network   string `json:"network"`
	Chaincode string `json:"chaincode,omitempty"`
	Expr      string `json:"expr"`
}

// Validate checks the policy parses.
func (p VerificationPolicy) Validate() error {
	if p.Network == "" {
		return errors.New("policy: verification policy needs a network")
	}
	if _, err := endorsement.Parse(p.Expr); err != nil {
		return fmt.Errorf("policy: verification expression: %w", err)
	}
	return nil
}

// Compile parses the policy expression.
func (p VerificationPolicy) Compile() (*endorsement.Policy, error) {
	return endorsement.Parse(p.Expr)
}

// Marshal encodes the policy for ledger storage.
func (p VerificationPolicy) Marshal() ([]byte, error) {
	return json.Marshal(p)
}

// UnmarshalVerificationPolicy decodes a stored verification policy.
func UnmarshalVerificationPolicy(data []byte) (VerificationPolicy, error) {
	var p VerificationPolicy
	if err := json.Unmarshal(data, &p); err != nil {
		return VerificationPolicy{}, fmt.Errorf("policy: unmarshal verification policy: %w", err)
	}
	return p, nil
}

// DeriveFromConsensus constructs a verification policy from a source
// network's endorsement (consensus) policy for a chaincode — the paper's §7
// direction made concrete. The derived policy demands attestations from
// peer identities of exactly the organization structure whose endorsement
// made the data authoritative.
func DeriveFromConsensus(networkID, chaincodeName, endorsementExpr string) (VerificationPolicy, error) {
	parsed, err := endorsement.Parse(endorsementExpr)
	if err != nil {
		return VerificationPolicy{}, fmt.Errorf("policy: consensus policy: %w", err)
	}
	derived := parsed.WithRole(msp.RolePeer)
	vp := VerificationPolicy{Network: networkID, Chaincode: chaincodeName, Expr: derived.String()}
	if err := vp.Validate(); err != nil {
		return VerificationPolicy{}, err
	}
	return vp, nil
}
