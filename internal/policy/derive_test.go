package policy

import (
	"strings"
	"testing"

	"repro/internal/endorsement"
	"repro/internal/msp"
)

func TestDeriveFromConsensusSimple(t *testing.T) {
	vp, err := DeriveFromConsensus("tradelens", "TradeLensCC", "AND('seller-org','carrier-org')")
	if err != nil {
		t.Fatalf("DeriveFromConsensus: %v", err)
	}
	if vp.Network != "tradelens" || vp.Chaincode != "TradeLensCC" {
		t.Fatalf("vp = %+v", vp)
	}
	// Every principal must have been narrowed to the peer role.
	if !strings.Contains(vp.Expr, "seller-org.peer") || !strings.Contains(vp.Expr, "carrier-org.peer") {
		t.Fatalf("expr = %q", vp.Expr)
	}
	// The derived policy accepts exactly peer attestors of those orgs.
	compiled, err := vp.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	peers := []endorsement.Principal{
		{OrgID: "seller-org", Role: msp.RolePeer},
		{OrgID: "carrier-org", Role: msp.RolePeer},
	}
	if !compiled.Satisfied(peers) {
		t.Fatal("derived policy rejects the endorsing peer set")
	}
	clients := []endorsement.Principal{
		{OrgID: "seller-org", Role: msp.RoleClient},
		{OrgID: "carrier-org", Role: msp.RoleClient},
	}
	if compiled.Satisfied(clients) {
		t.Fatal("derived policy accepts client signers")
	}
}

func TestDeriveFromConsensusNested(t *testing.T) {
	vp, err := DeriveFromConsensus("net", "", "OR('reg', OutOf(2,'a','b','c'))")
	if err != nil {
		t.Fatalf("DeriveFromConsensus: %v", err)
	}
	compiled, _ := vp.Compile()
	// 2-of-3 peer attestors satisfy the derived policy.
	if !compiled.Satisfied([]endorsement.Principal{
		{OrgID: "a", Role: msp.RolePeer}, {OrgID: "c", Role: msp.RolePeer},
	}) {
		t.Fatalf("derived policy %q rejects 2-of-3 peers", vp.Expr)
	}
	// One peer is not enough.
	if compiled.Satisfied([]endorsement.Principal{{OrgID: "b", Role: msp.RolePeer}}) {
		t.Fatal("derived policy accepts 1-of-3")
	}
}

func TestDeriveFromConsensusPreservesExplicitRoles(t *testing.T) {
	vp, err := DeriveFromConsensus("net", "", "AND('a.admin','b')")
	if err != nil {
		t.Fatalf("DeriveFromConsensus: %v", err)
	}
	if !strings.Contains(vp.Expr, "a.admin") {
		t.Fatalf("explicit role overwritten: %q", vp.Expr)
	}
	if !strings.Contains(vp.Expr, "b.peer") {
		t.Fatalf("role-less principal not narrowed: %q", vp.Expr)
	}
}

func TestDeriveFromConsensusBadExpr(t *testing.T) {
	if _, err := DeriveFromConsensus("net", "", "AND("); err == nil {
		t.Fatal("bad consensus expression accepted")
	}
}

func TestWithRoleNil(t *testing.T) {
	var p *endorsement.Policy
	if p.WithRole(msp.RolePeer) != nil {
		t.Fatal("nil policy WithRole should stay nil")
	}
}
