// Package endorsement implements the signature policy language used both
// for transaction endorsement policies within a network and for the
// verification policies that destination networks impose on cross-network
// proofs (§3.3). A policy is a boolean expression over principals:
//
//	AND('seller-org','carrier-org')
//	OR('bank-a.peer', AND('bank-b','bank-c'))
//	OutOf(2, 'org1', 'org2', 'org3')
//
// A principal names an organization and optionally a role ('org' matches
// any role, 'org.peer' only peer identities). A policy is satisfied by a
// set of signer principals when the expression evaluates true with each
// leaf satisfied by at least one signer.
package endorsement

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/msp"
)

// ErrParse is returned for syntactically invalid policy expressions.
var ErrParse = errors.New("endorsement: policy parse error")

// Principal identifies a class of signers: an organization, optionally
// narrowed to a role. A zero Role matches any role.
type Principal struct {
	OrgID string
	Role  msp.Role
}

// String formats the principal in policy syntax.
func (p Principal) String() string {
	if p.Role == 0 {
		return "'" + p.OrgID + "'"
	}
	return "'" + p.OrgID + "." + p.Role.String() + "'"
}

// matches reports whether a signer satisfies this principal.
func (p Principal) matches(signer Principal) bool {
	if p.OrgID != signer.OrgID {
		return false
	}
	return p.Role == 0 || p.Role == signer.Role
}

// Policy is a parsed signature policy.
type Policy struct {
	root node
	expr string
}

type node interface {
	satisfied(signers []Principal) bool
	orgs(into map[string]bool)
	format() string
}

type leafNode struct{ p Principal }

func (n leafNode) satisfied(signers []Principal) bool {
	for _, s := range signers {
		if n.p.matches(s) {
			return true
		}
	}
	return false
}

func (n leafNode) orgs(into map[string]bool) { into[n.p.OrgID] = true }
func (n leafNode) format() string            { return n.p.String() }

type andNode struct{ subs []node }

func (n andNode) satisfied(signers []Principal) bool {
	for _, s := range n.subs {
		if !s.satisfied(signers) {
			return false
		}
	}
	return true
}

func (n andNode) orgs(into map[string]bool) {
	for _, s := range n.subs {
		s.orgs(into)
	}
}

func (n andNode) format() string { return "AND(" + joinNodes(n.subs) + ")" }

type orNode struct{ subs []node }

func (n orNode) satisfied(signers []Principal) bool {
	for _, s := range n.subs {
		if s.satisfied(signers) {
			return true
		}
	}
	return false
}

func (n orNode) orgs(into map[string]bool) {
	for _, s := range n.subs {
		s.orgs(into)
	}
}

func (n orNode) format() string { return "OR(" + joinNodes(n.subs) + ")" }

type outOfNode struct {
	n    int
	subs []node
}

func (n outOfNode) satisfied(signers []Principal) bool {
	count := 0
	for _, s := range n.subs {
		if s.satisfied(signers) {
			count++
			if count >= n.n {
				return true
			}
		}
	}
	return false
}

func (n outOfNode) orgs(into map[string]bool) {
	for _, s := range n.subs {
		s.orgs(into)
	}
}

func (n outOfNode) format() string {
	return "OutOf(" + strconv.Itoa(n.n) + ", " + joinNodes(n.subs) + ")"
}

func joinNodes(subs []node) string {
	parts := make([]string, len(subs))
	for i, s := range subs {
		parts[i] = s.format()
	}
	return strings.Join(parts, ",")
}

// Satisfied reports whether the given signer set satisfies the policy.
func (p *Policy) Satisfied(signers []Principal) bool {
	if p == nil || p.root == nil {
		return false
	}
	return p.root.satisfied(signers)
}

// Orgs returns the sorted set of organization IDs the policy references.
// Relays use this to select which peers to query so the resulting proof can
// satisfy the policy (Fig. 2 step 5).
func (p *Policy) Orgs() []string {
	set := make(map[string]bool)
	if p != nil && p.root != nil {
		p.root.orgs(set)
	}
	orgs := make([]string, 0, len(set))
	for o := range set {
		orgs = append(orgs, o)
	}
	sort.Strings(orgs)
	return orgs
}

// String returns the canonical expression form of the policy.
func (p *Policy) String() string {
	if p == nil || p.root == nil {
		return ""
	}
	return p.root.format()
}

// WithRole returns a copy of the policy in which every principal that does
// not already name a role is narrowed to the given role. This implements
// the §7 direction "construction of an optimal verification policy from a
// network's consensus policy": a destination network can derive its
// verification policy directly from the source chaincode's endorsement
// policy, narrowed to peer identities, so the attestor set mirrors the set
// whose endorsement made the data authoritative in the first place.
func (p *Policy) WithRole(role msp.Role) *Policy {
	if p == nil || p.root == nil {
		return nil
	}
	return &Policy{root: withRole(p.root, role)}
}

func withRole(n node, role msp.Role) node {
	switch v := n.(type) {
	case leafNode:
		if v.p.Role == 0 {
			return leafNode{p: Principal{OrgID: v.p.OrgID, Role: role}}
		}
		return v
	case andNode:
		return andNode{subs: withRoleAll(v.subs, role)}
	case orNode:
		return orNode{subs: withRoleAll(v.subs, role)}
	case outOfNode:
		return outOfNode{n: v.n, subs: withRoleAll(v.subs, role)}
	default:
		return n
	}
}

func withRoleAll(subs []node, role msp.Role) []node {
	out := make([]node, len(subs))
	for i, s := range subs {
		out[i] = withRole(s, role)
	}
	return out
}

// Parse parses a policy expression.
func Parse(expr string) (*Policy, error) {
	pr := &parser{input: expr}
	root, err := pr.parseExpr()
	if err != nil {
		return nil, err
	}
	pr.skipSpace()
	if pr.pos != len(pr.input) {
		return nil, fmt.Errorf("%w: trailing input at offset %d", ErrParse, pr.pos)
	}
	return &Policy{root: root, expr: expr}, nil
}

// MustParse is Parse that panics on error, for statically known policies in
// tests and examples.
func MustParse(expr string) *Policy {
	p, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	input string
	pos   int
}

func (pr *parser) skipSpace() {
	for pr.pos < len(pr.input) && (pr.input[pr.pos] == ' ' || pr.input[pr.pos] == '\t') {
		pr.pos++
	}
}

func (pr *parser) peek() byte {
	if pr.pos >= len(pr.input) {
		return 0
	}
	return pr.input[pr.pos]
}

func (pr *parser) expect(c byte) error {
	pr.skipSpace()
	if pr.peek() != c {
		return fmt.Errorf("%w: expected %q at offset %d", ErrParse, string(c), pr.pos)
	}
	pr.pos++
	return nil
}

func (pr *parser) parseExpr() (node, error) {
	pr.skipSpace()
	switch {
	case pr.hasKeyword("AND"):
		subs, err := pr.parseArgList(0)
		if err != nil {
			return nil, err
		}
		return andNode{subs: subs}, nil
	case pr.hasKeyword("OR"):
		subs, err := pr.parseArgList(0)
		if err != nil {
			return nil, err
		}
		return orNode{subs: subs}, nil
	case pr.hasKeyword("OutOf"):
		n, subs, err := pr.parseOutOfArgs()
		if err != nil {
			return nil, err
		}
		return outOfNode{n: n, subs: subs}, nil
	case pr.peek() == '\'':
		return pr.parsePrincipal()
	default:
		return nil, fmt.Errorf("%w: unexpected input at offset %d", ErrParse, pr.pos)
	}
}

// hasKeyword consumes the keyword if it is present at the cursor, matched
// case-insensitively, and only when followed by '('.
func (pr *parser) hasKeyword(kw string) bool {
	save := pr.pos
	pr.skipSpace()
	if len(pr.input)-pr.pos < len(kw) {
		pr.pos = save
		return false
	}
	if !strings.EqualFold(pr.input[pr.pos:pr.pos+len(kw)], kw) {
		pr.pos = save
		return false
	}
	rest := pr.pos + len(kw)
	for rest < len(pr.input) && (pr.input[rest] == ' ' || pr.input[rest] == '\t') {
		rest++
	}
	if rest >= len(pr.input) || pr.input[rest] != '(' {
		pr.pos = save
		return false
	}
	pr.pos += len(kw)
	return true
}

func (pr *parser) parseArgList(minArgs int) ([]node, error) {
	if err := pr.expect('('); err != nil {
		return nil, err
	}
	var subs []node
	for {
		sub, err := pr.parseExpr()
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
		pr.skipSpace()
		if pr.peek() == ',' {
			pr.pos++
			continue
		}
		break
	}
	if err := pr.expect(')'); err != nil {
		return nil, err
	}
	if len(subs) < minArgs {
		return nil, fmt.Errorf("%w: too few arguments", ErrParse)
	}
	return subs, nil
}

func (pr *parser) parseOutOfArgs() (int, []node, error) {
	if err := pr.expect('('); err != nil {
		return 0, nil, err
	}
	pr.skipSpace()
	start := pr.pos
	for pr.pos < len(pr.input) && pr.input[pr.pos] >= '0' && pr.input[pr.pos] <= '9' {
		pr.pos++
	}
	if start == pr.pos {
		return 0, nil, fmt.Errorf("%w: OutOf requires a leading count", ErrParse)
	}
	n, err := strconv.Atoi(pr.input[start:pr.pos])
	if err != nil || n < 1 {
		return 0, nil, fmt.Errorf("%w: bad OutOf count", ErrParse)
	}
	if err := pr.expect(','); err != nil {
		return 0, nil, err
	}
	var subs []node
	for {
		sub, err := pr.parseExpr()
		if err != nil {
			return 0, nil, err
		}
		subs = append(subs, sub)
		pr.skipSpace()
		if pr.peek() == ',' {
			pr.pos++
			continue
		}
		break
	}
	if err := pr.expect(')'); err != nil {
		return 0, nil, err
	}
	if n > len(subs) {
		return 0, nil, fmt.Errorf("%w: OutOf count %d exceeds %d alternatives", ErrParse, n, len(subs))
	}
	return n, subs, nil
}

func (pr *parser) parsePrincipal() (node, error) {
	if err := pr.expect('\''); err != nil {
		return nil, err
	}
	start := pr.pos
	for pr.pos < len(pr.input) && pr.input[pr.pos] != '\'' {
		pr.pos++
	}
	if pr.pos >= len(pr.input) {
		return nil, fmt.Errorf("%w: unterminated principal", ErrParse)
	}
	raw := pr.input[start:pr.pos]
	pr.pos++ // consume closing quote
	if raw == "" {
		return nil, fmt.Errorf("%w: empty principal", ErrParse)
	}
	principal := Principal{OrgID: raw}
	if i := strings.LastIndexByte(raw, '.'); i >= 0 {
		role, err := msp.ParseRole(raw[i+1:])
		if err == nil {
			principal = Principal{OrgID: raw[:i], Role: role}
		}
		// An unknown suffix is treated as part of the org name, which
		// allows dotted organization identifiers.
	}
	if principal.OrgID == "" {
		return nil, fmt.Errorf("%w: empty org in principal", ErrParse)
	}
	return leafNode{p: principal}, nil
}
