package endorsement

import (
	"strings"
	"testing"

	"repro/internal/msp"
)

func signers(orgRoles ...string) []Principal {
	out := make([]Principal, 0, len(orgRoles))
	for _, s := range orgRoles {
		p := Principal{OrgID: s}
		if i := strings.LastIndexByte(s, '.'); i >= 0 {
			if role, err := msp.ParseRole(s[i+1:]); err == nil {
				p = Principal{OrgID: s[:i], Role: role}
			}
		}
		out = append(out, p)
	}
	return out
}

func TestParseSinglePrincipal(t *testing.T) {
	p, err := Parse("'seller-org'")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Satisfied(signers("seller-org.peer")) {
		t.Fatal("role-less principal should match any role")
	}
	if p.Satisfied(signers("carrier-org.peer")) {
		t.Fatal("wrong org satisfied the policy")
	}
}

func TestParsePrincipalWithRole(t *testing.T) {
	p := MustParse("'seller-org.peer'")
	if !p.Satisfied(signers("seller-org.peer")) {
		t.Fatal("matching role rejected")
	}
	if p.Satisfied(signers("seller-org.client")) {
		t.Fatal("wrong role satisfied the policy")
	}
}

func TestDottedOrgNameWithoutRole(t *testing.T) {
	p := MustParse("'acme.trading'") // ".trading" is not a role
	if !p.Satisfied([]Principal{{OrgID: "acme.trading", Role: msp.RolePeer}}) {
		t.Fatal("dotted org name not matched")
	}
}

func TestAndPolicy(t *testing.T) {
	p := MustParse("AND('seller-org','carrier-org')")
	if !p.Satisfied(signers("seller-org.peer", "carrier-org.peer")) {
		t.Fatal("complete signer set rejected")
	}
	if p.Satisfied(signers("seller-org.peer")) {
		t.Fatal("partial signer set accepted")
	}
	if p.Satisfied(nil) {
		t.Fatal("empty signer set accepted")
	}
}

func TestOrPolicy(t *testing.T) {
	p := MustParse("OR('bank-a','bank-b')")
	if !p.Satisfied(signers("bank-b.peer")) {
		t.Fatal("one alternative rejected")
	}
	if p.Satisfied(signers("bank-c.peer")) {
		t.Fatal("non-member accepted")
	}
}

func TestOutOfPolicy(t *testing.T) {
	p := MustParse("OutOf(2, 'o1','o2','o3')")
	if !p.Satisfied(signers("o1.peer", "o3.peer")) {
		t.Fatal("2-of-3 rejected")
	}
	if p.Satisfied(signers("o2.peer")) {
		t.Fatal("1-of-3 accepted")
	}
}

func TestNestedPolicy(t *testing.T) {
	p := MustParse("OR('regulator', AND('seller-org','carrier-org'))")
	if !p.Satisfied(signers("regulator.peer")) {
		t.Fatal("left branch rejected")
	}
	if !p.Satisfied(signers("seller-org.peer", "carrier-org.peer")) {
		t.Fatal("right branch rejected")
	}
	if p.Satisfied(signers("seller-org.peer")) {
		t.Fatal("incomplete right branch accepted")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	for _, expr := range []string{
		"and('a','b')",
		"And('a','b')",
		"AND('a','b')",
	} {
		if _, err := Parse(expr); err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
	}
}

func TestWhitespaceTolerated(t *testing.T) {
	p, err := Parse("  AND( 'a' ,\t'b' ) ")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.Satisfied(signers("a.peer", "b.peer")) {
		t.Fatal("whitespace-formatted policy failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"AND()",
		"AND('a'",
		"AND('a',)",
		"'unterminated",
		"''",
		"OutOf('a','b')",
		"OutOf(0,'a')",
		"OutOf(3,'a','b')",
		"NOT('a')",
		"AND('a') garbage",
		"42",
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Fatalf("Parse(%q) succeeded", expr)
		}
	}
}

func TestCanonicalStringRoundTrip(t *testing.T) {
	exprs := []string{
		"'seller-org'",
		"'seller-org.peer'",
		"AND('a','b')",
		"OR('a',AND('b','c'))",
		"OutOf(2, 'a','b','c')",
	}
	for _, expr := range exprs {
		p := MustParse(expr)
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("reparse %q: %v", canon, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, p2.String())
		}
	}
}

func TestOrgsEnumeration(t *testing.T) {
	p := MustParse("OR('zeta', AND('alpha','mid'), OutOf(1,'alpha'))")
	orgs := p.Orgs()
	want := []string{"alpha", "mid", "zeta"}
	if len(orgs) != len(want) {
		t.Fatalf("Orgs = %v", orgs)
	}
	for i := range want {
		if orgs[i] != want[i] {
			t.Fatalf("Orgs = %v, want %v", orgs, want)
		}
	}
}

func TestNilPolicy(t *testing.T) {
	var p *Policy
	if p.Satisfied(signers("a.peer")) {
		t.Fatal("nil policy satisfied")
	}
	if p.String() != "" || len(p.Orgs()) != 0 {
		t.Fatal("nil policy formatting")
	}
}

func TestPaperVerificationPolicy(t *testing.T) {
	// §4.3: "it requires proof from a peer in both the Seller and Carrier
	// organizations".
	p := MustParse("AND('seller-org.peer','carrier-org.peer')")
	if !p.Satisfied(signers("seller-org.peer", "carrier-org.peer")) {
		t.Fatal("paper's STL verification policy rejected valid attestors")
	}
	// A client signature must not stand in for a peer.
	if p.Satisfied(signers("seller-org.client", "carrier-org.peer")) {
		t.Fatal("client satisfied a peer-only policy")
	}
}

func BenchmarkParse(b *testing.B) {
	expr := "OR('regulator', AND('seller-org.peer','carrier-org.peer'), OutOf(2,'a','b','c'))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(expr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSatisfied(b *testing.B) {
	p := MustParse("OR('regulator', AND('seller-org.peer','carrier-org.peer'))")
	sig := signers("seller-org.peer", "carrier-org.peer")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Satisfied(sig) {
			b.Fatal("unsatisfied")
		}
	}
}
