package endorsement

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/msp"
)

// genPolicy builds a random policy expression tree of bounded depth,
// returning the expression and the set of org principals that satisfies it
// by construction (every leaf's org as a peer).
func genPolicy(rng *rand.Rand, depth int) string {
	if depth == 0 || rng.Intn(3) == 0 {
		org := "org-" + strconv.Itoa(rng.Intn(12))
		switch rng.Intn(3) {
		case 0:
			return "'" + org + "'"
		case 1:
			return "'" + org + ".peer'"
		default:
			return "'" + org + ".admin'"
		}
	}
	n := 2 + rng.Intn(3)
	subs := make([]string, n)
	for i := range subs {
		subs[i] = genPolicy(rng, depth-1)
	}
	switch rng.Intn(3) {
	case 0:
		return "AND(" + join(subs) + ")"
	case 1:
		return "OR(" + join(subs) + ")"
	default:
		k := 1 + rng.Intn(n)
		return "OutOf(" + strconv.Itoa(k) + ", " + join(subs) + ")"
	}
}

func join(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += "," + p
	}
	return out
}

// TestParseStringFixpoint: for random policies, Parse(p.String()) yields a
// policy with an identical canonical form and identical satisfaction
// behaviour on random signer sets.
func TestParseStringFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		expr := genPolicy(rng, 3)
		p1, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		canon := p1.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("reparse %q: %v", canon, err)
		}
		if p2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, p2.String())
		}
		// Random signer sets must be judged identically.
		for trial := 0; trial < 10; trial++ {
			signers := randomSigners(rng)
			if p1.Satisfied(signers) != p2.Satisfied(signers) {
				t.Fatalf("behaviour differs for %q on %v", expr, signers)
			}
		}
	}
}

func randomSigners(rng *rand.Rand) []Principal {
	n := rng.Intn(8)
	out := make([]Principal, n)
	for i := range out {
		out[i] = Principal{
			OrgID: "org-" + strconv.Itoa(rng.Intn(12)),
			Role:  msp.Role(1 + rng.Intn(3)),
		}
	}
	return out
}

// TestFullSignerSetSatisfiesEverything: a signer set covering every org in
// every role satisfies any policy whose leaves are drawn from those orgs.
func TestFullSignerSetSatisfiesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var everyone []Principal
	for i := 0; i < 12; i++ {
		for _, role := range []msp.Role{msp.RolePeer, msp.RoleClient, msp.RoleAdmin} {
			everyone = append(everyone, Principal{OrgID: "org-" + strconv.Itoa(i), Role: role})
		}
	}
	for i := 0; i < 200; i++ {
		expr := genPolicy(rng, 3)
		p := MustParse(expr)
		if !p.Satisfied(everyone) {
			t.Fatalf("full signer set fails %q", expr)
		}
	}
}

// TestEmptySignerSetSatisfiesNothing: no policy accepts an empty signer
// set.
func TestEmptySignerSetSatisfiesNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		expr := genPolicy(rng, 3)
		p := MustParse(expr)
		if p.Satisfied(nil) {
			t.Fatalf("empty signer set satisfies %q", expr)
		}
	}
}

// TestWithRolePreservesStructure: deriving a peer-narrowed policy never
// changes which orgs are referenced, and peer-only signer sets that satisfy
// the original also satisfy the derivation.
func TestWithRolePreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		expr := genPolicy(rng, 3)
		p := MustParse(expr)
		derived := p.WithRole(msp.RolePeer)
		if len(p.Orgs()) != len(derived.Orgs()) {
			t.Fatalf("WithRole changed org set for %q", expr)
		}
		// A peer-complete signer set over all orgs satisfies the derived
		// policy unless the original demanded non-peer roles.
		var peers []Principal
		for _, org := range p.Orgs() {
			peers = append(peers, Principal{OrgID: org, Role: msp.RolePeer})
		}
		if p.Satisfied(peers) && !derived.Satisfied(peers) {
			t.Fatalf("derived policy rejects peers the original accepts: %q", expr)
		}
	}
}
