package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleQuery() *Query {
	return &Query{
		RequestID:         "req-001",
		RequestingNetwork: "we-trade",
		TargetNetwork:     "tradelens",
		Ledger:            "default",
		Contract:          "TradeLensCC",
		Function:          "GetBillOfLading",
		Args:              [][]byte{[]byte("po-1001"), {}},
		PolicyExpr:        "AND('seller-org','carrier-org')",
		RequesterCertPEM:  []byte("-----BEGIN CERTIFICATE-----..."),
		RequesterOrg:      "seller-bank-org",
		Nonce:             []byte{1, 2, 3, 4},
		PolicyDigest:      []byte{0xEE, 0xFF, 0x01, 0x02},
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := sampleQuery()
	got, err := UnmarshalQuery(q.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalQuery: %v", err)
	}
	if got.RequestID != q.RequestID || got.TargetNetwork != q.TargetNetwork ||
		got.Function != q.Function || got.PolicyExpr != q.PolicyExpr ||
		got.RequesterOrg != q.RequesterOrg {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if len(got.Args) != 2 || !bytes.Equal(got.Args[0], []byte("po-1001")) || len(got.Args[1]) != 0 {
		t.Fatalf("args mismatch: %q", got.Args)
	}
	if !bytes.Equal(got.Nonce, q.Nonce) {
		t.Fatal("nonce mismatch")
	}
	if !bytes.Equal(got.PolicyDigest, q.PolicyDigest) {
		t.Fatal("policy digest mismatch")
	}
}

func TestQueryEmptyArgsPreserved(t *testing.T) {
	q := &Query{Function: "f", Args: [][]byte{{}, {}, {}}}
	got, err := UnmarshalQuery(q.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalQuery: %v", err)
	}
	if len(got.Args) != 3 {
		t.Fatalf("empty args not preserved: %d", len(got.Args))
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := &Envelope{
		Version:   ProtocolVersion,
		Type:      MsgQuery,
		RequestID: "req-7",
		Payload:   []byte("inner"),
	}
	got, err := UnmarshalEnvelope(env.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalEnvelope: %v", err)
	}
	if !reflect.DeepEqual(env, got) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", env, got)
	}
}

func TestEnvelopeDeadlineRoundTrip(t *testing.T) {
	env := &Envelope{
		Version:          ProtocolVersion,
		Type:             MsgQuery,
		RequestID:        "req-8",
		Payload:          []byte("inner"),
		DeadlineUnixNano: 1_753_500_000_123_456_789,
		TimeoutNanos:     30_000_000_000,
	}
	got, err := UnmarshalEnvelope(env.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalEnvelope: %v", err)
	}
	if got.DeadlineUnixNano != env.DeadlineUnixNano {
		t.Fatalf("deadline = %d, want %d", got.DeadlineUnixNano, env.DeadlineUnixNano)
	}
	if got.TimeoutNanos != env.TimeoutNanos {
		t.Fatalf("timeout = %d, want %d", got.TimeoutNanos, env.TimeoutNanos)
	}
	// Zero means unbounded and round-trips as zero for both encodings.
	unbounded := &Envelope{Version: ProtocolVersion, Type: MsgPing, RequestID: "p"}
	got, err = UnmarshalEnvelope(unbounded.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalEnvelope: %v", err)
	}
	if got.DeadlineUnixNano != 0 || got.TimeoutNanos != 0 {
		t.Fatalf("unbounded deadline = %d/%d, want 0/0", got.DeadlineUnixNano, got.TimeoutNanos)
	}
}

func TestEnvelopeRouteRoundTrip(t *testing.T) {
	env := &Envelope{
		Version:   ProtocolVersion,
		Type:      MsgQuery,
		RequestID: "req-10",
		Payload:   []byte("inner"),
		Route:     []string{"we-trade", "hub-1-net", "hub-2-net"},
		MaxHops:   4,
	}
	got, err := UnmarshalEnvelope(env.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalEnvelope: %v", err)
	}
	if !reflect.DeepEqual(env, got) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", env, got)
	}
	if !got.RouteContains("hub-1-net") || got.RouteContains("tradelens") {
		t.Fatalf("RouteContains wrong over %q", got.Route)
	}
	// An envelope with no route stays byte-identical to the pre-route
	// encoding: older relays see exactly the bytes they always did.
	legacy := &Envelope{Version: ProtocolVersion, Type: MsgQuery, RequestID: "r", Payload: []byte("p")}
	withZero := &Envelope{Version: ProtocolVersion, Type: MsgQuery, RequestID: "r", Payload: []byte("p"), Route: nil, MaxHops: 0}
	if !bytes.Equal(legacy.Marshal(), withZero.Marshal()) {
		t.Fatal("zero route fields changed the legacy encoding")
	}
}

func TestHopPinRoundTrip(t *testing.T) {
	pin := &HopPin{
		Network:   "hub-1-net",
		CertPEM:   []byte("-----BEGIN CERTIFICATE-----..."),
		Pin:       bytes.Repeat([]byte{0x11}, 32),
		Signature: []byte{1, 2, 3, 4},
	}
	got, err := UnmarshalHopPin(pin.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalHopPin: %v", err)
	}
	if !reflect.DeepEqual(pin, got) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestQueryResponseHopPinsRoundTrip(t *testing.T) {
	r := &QueryResponse{
		RequestID:       "req-11",
		EncryptedResult: []byte("ciphertext"),
		HopPins: []HopPin{
			{Network: "hub-2-net", Pin: []byte{0xA}, Signature: []byte{1}},
			{Network: "hub-1-net", Pin: []byte{0xB}, Signature: []byte{2}},
		},
	}
	got, err := UnmarshalQueryResponse(r.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalQueryResponse: %v", err)
	}
	if len(got.HopPins) != 2 || got.HopPins[0].Network != "hub-2-net" || got.HopPins[1].Network != "hub-1-net" {
		t.Fatalf("hop pin order lost: %+v", got.HopPins)
	}
	// Pin-free responses keep the pre-hop-pin encoding byte-identical.
	legacy := &QueryResponse{RequestID: "r", EncryptedResult: []byte("enc")}
	withZero := &QueryResponse{RequestID: "r", EncryptedResult: []byte("enc"), HopPins: nil}
	if !bytes.Equal(legacy.Marshal(), withZero.Marshal()) {
		t.Fatal("zero hop pins changed the legacy encoding")
	}
}

func TestAttestationRoundTrip(t *testing.T) {
	a := &Attestation{
		PeerName:          "peer0",
		OrgID:             "carrier-org",
		CertPEM:           []byte("certpem"),
		EncryptedMetadata: []byte{9, 8, 7},
		Signature:         []byte{1, 1, 2, 3, 5},
	}
	got, err := UnmarshalAttestation(a.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalAttestation: %v", err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	m := &Metadata{
		NetworkID:    "tradelens",
		PeerName:     "peer1",
		OrgID:        "seller-org",
		QueryDigest:  bytes.Repeat([]byte{0xAA}, 32),
		ResultDigest: bytes.Repeat([]byte{0xBB}, 32),
		Nonce:        []byte{4, 5, 6},
		UnixNano:     1700000000123456789,
		PolicyDigest: bytes.Repeat([]byte{0xCC}, 32),
	}
	got, err := UnmarshalMetadata(m.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalMetadata: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	r := &QueryResponse{
		RequestID:       "req-9",
		EncryptedResult: []byte("ciphertext"),
		Attestations: []Attestation{
			{PeerName: "p0", OrgID: "o0", Signature: []byte{1}},
			{PeerName: "p1", OrgID: "o1", Signature: []byte{2}},
		},
		PolicyDigest: bytes.Repeat([]byte{0xDD}, 32),
	}
	got, err := UnmarshalQueryResponse(r.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalQueryResponse: %v", err)
	}
	if got.RequestID != "req-9" || len(got.Attestations) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Attestations[1].PeerName != "p1" {
		t.Fatalf("attestation order lost: %+v", got.Attestations)
	}
	if !bytes.Equal(got.PolicyDigest, r.PolicyDigest) {
		t.Fatalf("policy digest lost: %x", got.PolicyDigest)
	}
}

func TestQueryResponseErrorOnly(t *testing.T) {
	r := &QueryResponse{RequestID: "req", Error: "access denied"}
	got, err := UnmarshalQueryResponse(r.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalQueryResponse: %v", err)
	}
	if got.Error != "access denied" || len(got.Attestations) != 0 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestNetworkConfigRoundTrip(t *testing.T) {
	c := &NetworkConfig{
		NetworkID: "tradelens",
		Platform:  "fabric",
		Orgs: []OrgConfig{
			{OrgID: "seller-org", RootCertPEM: []byte("root1"), PeerNames: []string{"peer0"}},
			{OrgID: "carrier-org", RootCertPEM: []byte("root2"), PeerNames: []string{"peer0", "peer1"}},
		},
	}
	got, err := UnmarshalNetworkConfig(c.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalNetworkConfig: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestEventRoundTrip(t *testing.T) {
	ev := &Event{
		SubscriptionID: "sub-1",
		SourceNetwork:  "tradelens",
		Name:           "bl-issued",
		Payload:        []byte("po-1001"),
		UnixNano:       42,
	}
	got, err := UnmarshalEvent(ev.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalEvent: %v", err)
	}
	if !reflect.DeepEqual(ev, got) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestSubscriptionRoundTrip(t *testing.T) {
	s := &Subscription{
		SubscriptionID:    "sub-2",
		RequestingNetwork: "we-trade",
		TargetNetwork:     "tradelens",
		EventName:         "bl-issued",
		RequesterCertPEM:  []byte("pem"),
	}
	got, err := UnmarshalSubscription(s.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalSubscription: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	garbage := bytes.Repeat([]byte{0xFF}, 12)
	if _, err := UnmarshalQuery(garbage); err == nil {
		t.Fatal("UnmarshalQuery accepted garbage")
	}
	if _, err := UnmarshalEnvelope(garbage); err == nil {
		t.Fatal("UnmarshalEnvelope accepted garbage")
	}
	if _, err := UnmarshalQueryResponse(garbage); err == nil {
		t.Fatal("UnmarshalQueryResponse accepted garbage")
	}
}

func TestMsgTypeString(t *testing.T) {
	cases := map[MsgType]string{
		MsgQuery:         "query",
		MsgQueryResponse: "query-response",
		MsgError:         "error",
		MsgPing:          "ping",
		MsgPong:          "pong",
		MsgEvent:         "event",
		MsgSubscribe:     "subscribe",
		MsgType(99):      "msgtype(99)",
	}
	for mt, want := range cases {
		if mt.String() != want {
			t.Fatalf("MsgType(%d).String() = %q, want %q", int(mt), mt.String(), want)
		}
	}
}

// TestQueryRoundTripProperty round-trips randomly generated queries.
func TestQueryRoundTripProperty(t *testing.T) {
	prop := func(reqID, net1, net2, fn string, arg []byte, nonce []byte) bool {
		q := &Query{
			RequestID:         reqID,
			RequestingNetwork: net1,
			TargetNetwork:     net2,
			Function:          fn,
			Args:              [][]byte{arg},
			Nonce:             nonce,
		}
		got, err := UnmarshalQuery(q.Marshal())
		if err != nil {
			return false
		}
		return got.RequestID == reqID && got.RequestingNetwork == net1 &&
			got.TargetNetwork == net2 && got.Function == fn &&
			len(got.Args) == 1 && bytes.Equal(got.Args[0], arg) &&
			bytes.Equal(got.Nonce, nonce)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueryMarshal(b *testing.B) {
	q := sampleQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = q.Marshal()
	}
}

func BenchmarkQueryUnmarshal(b *testing.B) {
	buf := sampleQuery().Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalQuery(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryResponseMarshal(b *testing.B) {
	r := &QueryResponse{
		RequestID:       "req",
		EncryptedResult: make([]byte, 4096),
		Attestations: []Attestation{
			{PeerName: "p0", OrgID: "o0", CertPEM: make([]byte, 800), EncryptedMetadata: make([]byte, 300), Signature: make([]byte, 72)},
			{PeerName: "p1", OrgID: "o1", CertPEM: make([]byte, 800), EncryptedMetadata: make([]byte, 300), Signature: make([]byte, 72)},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Marshal()
	}
}
