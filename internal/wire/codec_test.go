package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeScalars(t *testing.T) {
	e := NewEncoder(0)
	e.Uint(1, 42)
	e.Uint(2, 0) // omitted
	e.Bool(3, true)
	e.Bool(4, false) // omitted
	e.String(5, "hello")
	e.BytesField(6, []byte{0xDE, 0xAD})

	d := NewDecoder(e.Bytes())
	seen := map[int]bool{}
	for {
		field, ok, err := d.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		seen[field] = true
		switch field {
		case 1:
			v, err := d.Uint()
			if err != nil || v != 42 {
				t.Fatalf("field 1 = %d, %v", v, err)
			}
		case 3:
			v, err := d.Bool()
			if err != nil || !v {
				t.Fatalf("field 3 = %v, %v", v, err)
			}
		case 5:
			v, err := d.String()
			if err != nil || v != "hello" {
				t.Fatalf("field 5 = %q, %v", v, err)
			}
		case 6:
			v, err := d.Bytes()
			if err != nil || !bytes.Equal(v, []byte{0xDE, 0xAD}) {
				t.Fatalf("field 6 = %x, %v", v, err)
			}
		default:
			t.Fatalf("unexpected field %d", field)
		}
	}
	if seen[2] || seen[4] {
		t.Fatal("zero-valued fields were encoded")
	}
	for _, f := range []int{1, 3, 5, 6} {
		if !seen[f] {
			t.Fatalf("field %d missing", f)
		}
	}
}

func TestDecoderSkipUnknownFields(t *testing.T) {
	e := NewEncoder(0)
	e.Uint(1, 7)
	e.String(99, "future field")
	e.BytesField(100, []byte("more future data"))
	e.Uint(2, 9)

	d := NewDecoder(e.Bytes())
	var got1, got2 uint64
	for {
		field, ok, err := d.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		switch field {
		case 1:
			got1, _ = d.Uint()
		case 2:
			got2, _ = d.Uint()
		default:
			if err := d.Skip(); err != nil {
				t.Fatalf("Skip: %v", err)
			}
		}
	}
	if got1 != 7 || got2 != 9 {
		t.Fatalf("got1=%d got2=%d", got1, got2)
	}
}

func TestDecoderTruncated(t *testing.T) {
	e := NewEncoder(0)
	e.BytesField(1, make([]byte, 100))
	full := e.Bytes()
	for _, cut := range []int{1, 2, 50, 101} {
		d := NewDecoder(full[:cut])
		_, ok, err := d.Next()
		if err != nil {
			continue // malformed key is an acceptable failure mode
		}
		if !ok {
			continue
		}
		if _, err := d.Bytes(); err == nil {
			t.Fatalf("cut=%d: Bytes succeeded on truncated input", cut)
		}
	}
}

func TestDecoderWrongWireType(t *testing.T) {
	e := NewEncoder(0)
	e.Uint(1, 5)
	d := NewDecoder(e.Bytes())
	if _, ok, err := d.Next(); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	if _, err := d.Bytes(); err == nil {
		t.Fatal("Bytes succeeded on a varint field")
	}

	e2 := NewEncoder(0)
	e2.String(1, "x")
	d2 := NewDecoder(e2.Bytes())
	if _, ok, err := d2.Next(); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	if _, err := d2.Uint(); err == nil {
		t.Fatal("Uint succeeded on a bytes field")
	}
}

func TestDecoderFieldZeroRejected(t *testing.T) {
	// key varint 0x00 = field 0, wiretype 0
	d := NewDecoder([]byte{0x00})
	if _, _, err := d.Next(); err == nil {
		t.Fatal("field number 0 accepted")
	}
}

func TestDecoderOversizedLength(t *testing.T) {
	// field 1, bytes wire type, declared length 2^40
	buf := []byte{0x0A, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	d := NewDecoder(buf)
	if _, ok, err := d.Next(); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	if _, err := d.Bytes(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDecoderGarbage(t *testing.T) {
	// A long run of continuation bytes never terminates a varint.
	garbage := bytes.Repeat([]byte{0xFF}, 16)
	d := NewDecoder(garbage)
	if _, _, err := d.Next(); err == nil {
		// Next may parse a huge key; then any read should fail.
		if err2 := d.Skip(); err2 == nil {
			t.Fatal("garbage decoded cleanly")
		}
	}
}

func TestBytesCopyDoesNotAlias(t *testing.T) {
	e := NewEncoder(0)
	e.BytesField(1, []byte{1, 2, 3})
	buf := e.Bytes()
	d := NewDecoder(buf)
	_, _, _ = d.Next()
	got, err := d.BytesCopy()
	if err != nil {
		t.Fatalf("BytesCopy: %v", err)
	}
	buf[len(buf)-1] = 0xFF
	if got[2] != 3 {
		t.Fatal("BytesCopy aliases the input buffer")
	}
}

func TestEmptyMessagePreserved(t *testing.T) {
	e := NewEncoder(0)
	e.Message(1, nil) // empty embedded message must still appear
	d := NewDecoder(e.Bytes())
	field, ok, err := d.Next()
	if err != nil || !ok || field != 1 {
		t.Fatalf("Next: field=%d ok=%v err=%v", field, ok, err)
	}
	b, err := d.Bytes()
	if err != nil || len(b) != 0 {
		t.Fatalf("Bytes: %x, %v", b, err)
	}
}

// TestUintRoundTripProperty checks varint round-trips for arbitrary values.
func TestUintRoundTripProperty(t *testing.T) {
	prop := func(v uint64) bool {
		e := NewEncoder(0)
		e.Uint(1, v)
		if v == 0 {
			return len(e.Bytes()) == 0
		}
		d := NewDecoder(e.Bytes())
		_, ok, err := d.Next()
		if !ok || err != nil {
			return false
		}
		got, err := d.Uint()
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBytesRoundTripProperty checks byte-field round-trips for arbitrary
// payloads.
func TestBytesRoundTripProperty(t *testing.T) {
	prop := func(payload []byte) bool {
		e := NewEncoder(0)
		e.Message(1, payload)
		d := NewDecoder(e.Bytes())
		_, ok, err := d.Next()
		if !ok || err != nil {
			return false
		}
		got, err := d.Bytes()
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeSmallMessage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(64)
		e.Uint(1, 12345)
		e.String(2, "we-trade")
		e.BytesField(3, []byte("payload-bytes"))
		_ = e.Bytes()
	}
}

func BenchmarkDecodeSmallMessage(b *testing.B) {
	e := NewEncoder(64)
	e.Uint(1, 12345)
	e.String(2, "we-trade")
	e.BytesField(3, []byte("payload-bytes"))
	buf := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		for {
			_, ok, err := d.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			if err := d.Skip(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
