package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single relay-to-relay frame. It must accommodate a
// query result plus its proof; see maxFieldLen for the per-field bound.
const MaxFrameSize = 96 << 20 // 96 MiB

// WriteFrame writes a length-prefixed frame to w: a 4-byte big-endian length
// followed by the payload. This is the transport framing relays use over
// TCP in place of the paper's gRPC streams.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("read frame header: %w", err)
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length > MaxFrameSize {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrTooLarge, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("read frame payload: %w", err)
	}
	return payload, nil
}
