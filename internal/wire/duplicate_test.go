package wire

import (
	"strings"
	"testing"
)

// appendField re-encodes one extra occurrence of a field onto an already
// valid message encoding. wt selects the shape: "uint" or "bytes".
func appendField(valid []byte, field int, wt string) []byte {
	e := NewEncoder(16)
	switch wt {
	case "uint":
		e.Uint(field, 7)
	default:
		e.BytesField(field, []byte("dup"))
	}
	return append(append([]byte{}, valid...), e.Bytes()...)
}

func TestDecodersRejectDuplicateScalarFields(t *testing.T) {
	// Our own encoders never emit a scalar field twice (zero values are
	// omitted, non-zero values are written once), so a second occurrence is
	// always a crafted message aiming at last-write-wins confusion: present
	// digest-checked bytes in the first occurrence, smuggle different
	// content in the second. Every decoder must hard-fail instead.
	att := &Attestation{PeerName: "p0", OrgID: "org", CertPEM: []byte("cert"),
		EncryptedMetadata: []byte("em"), Signature: []byte("sig"),
		BatchSize: 2, BatchIndex: 1, BatchPath: [][]byte{[]byte("h0")}}
	cases := []struct {
		name   string
		valid  []byte
		field  int
		wt     string
		decode func([]byte) error
	}{
		{"envelope/type", (&Envelope{Type: MsgQuery, RequestID: "r", Payload: []byte("p")}).Marshal(), 2, "uint",
			func(b []byte) error { _, err := UnmarshalEnvelope(b); return err }},
		{"envelope/max_hops", (&Envelope{Type: MsgQuery, RequestID: "r", Route: []string{"a"}, MaxHops: 4}).Marshal(), 8, "uint",
			func(b []byte) error { _, err := UnmarshalEnvelope(b); return err }},
		{"hop_pin/pin", (&HopPin{Network: "hub", Pin: []byte("pin"), Signature: []byte("sig")}).Marshal(), 3, "bytes",
			func(b []byte) error { _, err := UnmarshalHopPin(b); return err }},
		{"hop_pin/signature", (&HopPin{Network: "hub", Pin: []byte("pin"), Signature: []byte("sig")}).Marshal(), 4, "bytes",
			func(b []byte) error { _, err := UnmarshalHopPin(b); return err }},
		{"query/request_id", (&Query{RequestID: "r", Contract: "c", Function: "f"}).Marshal(), 1, "bytes",
			func(b []byte) error { _, err := UnmarshalQuery(b); return err }},
		{"query/accept_batched", (&Query{RequestID: "r", AcceptBatched: true}).Marshal(), 13, "uint",
			func(b []byte) error { _, err := UnmarshalQuery(b); return err }},
		{"attestation/signature", att.Marshal(), 5, "bytes",
			func(b []byte) error { _, err := UnmarshalAttestation(b); return err }},
		{"attestation/batch_size", att.Marshal(), 6, "uint",
			func(b []byte) error { _, err := UnmarshalAttestation(b); return err }},
		{"metadata/result_digest", (&Metadata{NetworkID: "n", ResultDigest: []byte("rd")}).Marshal(), 5, "bytes",
			func(b []byte) error { _, err := UnmarshalMetadata(b); return err }},
		{"query_response/encrypted_result", (&QueryResponse{RequestID: "r", EncryptedResult: []byte("enc")}).Marshal(), 2, "bytes",
			func(b []byte) error { _, err := UnmarshalQueryResponse(b); return err }},
		{"org_config/root_cert", (&OrgConfig{OrgID: "o", RootCertPEM: []byte("root")}).Marshal(), 2, "bytes",
			func(b []byte) error { _, err := UnmarshalOrgConfig(b); return err }},
		{"network_config/network_id", (&NetworkConfig{NetworkID: "n"}).Marshal(), 1, "bytes",
			func(b []byte) error { _, err := UnmarshalNetworkConfig(b); return err }},
		{"event/subscription_id", (&Event{SubscriptionID: "sub-1"}).Marshal(), 1, "bytes",
			func(b []byte) error { _, err := UnmarshalEvent(b); return err }},
		{"subscription/id", (&Subscription{SubscriptionID: "sub-1"}).Marshal(), 1, "bytes",
			func(b []byte) error { _, err := UnmarshalSubscription(b); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.decode(tc.valid); err != nil {
				t.Fatalf("control decode failed: %v", err)
			}
			crafted := appendField(tc.valid, tc.field, tc.wt)
			err := tc.decode(crafted)
			if err == nil {
				t.Fatal("duplicate scalar field accepted")
			}
			if !strings.Contains(err.Error(), "duplicate scalar field") {
				t.Fatalf("wrong refusal: %v", err)
			}
		})
	}
}

func TestDecodersStillAcceptRepeatedFields(t *testing.T) {
	// Genuinely repeated fields — list-valued by design — must keep
	// accepting any number of occurrences.
	q, err := UnmarshalQuery((&Query{RequestID: "r", Args: [][]byte{[]byte("a"), []byte("b"), []byte("c")}}).Marshal())
	if err != nil {
		t.Fatalf("query args: %v", err)
	}
	if len(q.Args) != 3 {
		t.Fatalf("args = %d", len(q.Args))
	}
	att, err := UnmarshalAttestation((&Attestation{PeerName: "p", BatchSize: 4, BatchPath: [][]byte{[]byte("h0"), []byte("h1")}}).Marshal())
	if err != nil {
		t.Fatalf("attestation batch path: %v", err)
	}
	if len(att.BatchPath) != 2 {
		t.Fatalf("batch path = %d", len(att.BatchPath))
	}
	oc, err := UnmarshalOrgConfig((&OrgConfig{OrgID: "o", PeerNames: []string{"p0", "p1"}}).Marshal())
	if err != nil {
		t.Fatalf("org config peers: %v", err)
	}
	if len(oc.PeerNames) != 2 {
		t.Fatalf("peers = %d", len(oc.PeerNames))
	}
	env, err := UnmarshalEnvelope((&Envelope{Type: MsgQuery, Route: []string{"a", "b", "c"}}).Marshal())
	if err != nil {
		t.Fatalf("envelope route: %v", err)
	}
	if len(env.Route) != 3 {
		t.Fatalf("route = %d", len(env.Route))
	}
	resp, err := UnmarshalQueryResponse((&QueryResponse{RequestID: "r",
		HopPins: []HopPin{{Network: "h1"}, {Network: "h2"}}}).Marshal())
	if err != nil {
		t.Fatalf("response hop pins: %v", err)
	}
	if len(resp.HopPins) != 2 {
		t.Fatalf("hop pins = %d", len(resp.HopPins))
	}
}

func TestScalarGuardRange(t *testing.T) {
	var g ScalarGuard
	// Out-of-range and unmasked fields pass through Check untouched — they
	// are unknown fields the decoder skips, not scalars to police.
	if err := g.Check(0, FieldMask(1)); err != nil {
		t.Fatalf("field 0: %v", err)
	}
	if err := g.Check(64, FieldMask(1)); err != nil {
		t.Fatalf("field 64: %v", err)
	}
	if err := g.Check(2, FieldMask(1)); err != nil {
		t.Fatalf("unmasked field: %v", err)
	}
	if err := g.Check(1, FieldMask(1)); err != nil {
		t.Fatalf("first occurrence: %v", err)
	}
	if err := g.Check(1, FieldMask(1)); err == nil {
		t.Fatal("second occurrence accepted")
	}
}
