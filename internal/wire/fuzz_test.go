package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalQueryResponse drives the full response decode stack —
// QueryResponse, nested Attestations with batch fields, the scalar-dup
// guard — with arbitrary bytes. Properties: never panic, never accept a
// message whose re-encoding decodes differently (the round-trip must be a
// fixed point once through the canonical encoder).
func FuzzUnmarshalQueryResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&QueryResponse{RequestID: "r", EncryptedResult: []byte("enc"), PolicyDigest: []byte("pd")}).Marshal())
	// A batched response: attestations carrying size/index/path.
	batched := &QueryResponse{
		RequestID: "r",
		Attestations: []Attestation{{
			PeerName: "p0", OrgID: "org", CertPEM: []byte("cert"),
			EncryptedMetadata: []byte("em"), Signature: []byte("sig"),
			BatchSize: 8, BatchIndex: 3,
			BatchPath: [][]byte{bytes.Repeat([]byte{0xaa}, 32), bytes.Repeat([]byte{0xbb}, 32), bytes.Repeat([]byte{0xcc}, 32)},
		}},
	}
	f.Add(batched.Marshal())
	// A crafted duplicate scalar: valid encoding plus a second RequestID.
	dupe := NewEncoder(16)
	dupe.String(1, "other")
	f.Add(append(append([]byte{}, batched.Marshal()...), dupe.Bytes()...))
	// Truncated mid-message.
	full := batched.Marshal()
	f.Add(full[:len(full)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalQueryResponse(data)
		if err != nil {
			return
		}
		again, err := UnmarshalQueryResponse(m.Marshal())
		if err != nil {
			t.Fatalf("canonical re-encoding refused: %v", err)
		}
		if !bytes.Equal(m.Marshal(), again.Marshal()) {
			t.Fatal("decode/encode is not a fixed point")
		}
	})
}

// FuzzUnmarshalQuery covers the request side including the AcceptBatched
// capability bit and repeated Args.
func FuzzUnmarshalQuery(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Query{RequestID: "r", Contract: "c", Function: "f",
		Args: [][]byte{[]byte("a"), []byte("b")}, AcceptBatched: true,
		Nonce: []byte("nonce"), PolicyDigest: []byte("pd")}).Marshal())
	dupe := NewEncoder(8)
	dupe.Bool(13, true)
	valid := (&Query{RequestID: "r", AcceptBatched: true}).Marshal()
	f.Add(append(append([]byte{}, valid...), dupe.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalQuery(data)
		if err != nil {
			return
		}
		again, err := UnmarshalQuery(m.Marshal())
		if err != nil {
			t.Fatalf("canonical re-encoding refused: %v", err)
		}
		if !bytes.Equal(m.Marshal(), again.Marshal()) {
			t.Fatal("decode/encode is not a fixed point")
		}
	})
}
