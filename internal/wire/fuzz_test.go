package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalQueryResponse drives the full response decode stack —
// QueryResponse, nested Attestations with batch fields, the scalar-dup
// guard — with arbitrary bytes. Properties: never panic, never accept a
// message whose re-encoding decodes differently (the round-trip must be a
// fixed point once through the canonical encoder).
func FuzzUnmarshalQueryResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add((&QueryResponse{RequestID: "r", EncryptedResult: []byte("enc"), PolicyDigest: []byte("pd")}).Marshal())
	// A batched response: attestations carrying size/index/path.
	batched := &QueryResponse{
		RequestID: "r",
		Attestations: []Attestation{{
			PeerName: "p0", OrgID: "org", CertPEM: []byte("cert"),
			EncryptedMetadata: []byte("em"), Signature: []byte("sig"),
			BatchSize: 8, BatchIndex: 3,
			BatchPath: [][]byte{bytes.Repeat([]byte{0xaa}, 32), bytes.Repeat([]byte{0xbb}, 32), bytes.Repeat([]byte{0xcc}, 32)},
		}},
	}
	f.Add(batched.Marshal())
	// A crafted duplicate scalar: valid encoding plus a second RequestID.
	dupe := NewEncoder(16)
	dupe.String(1, "other")
	f.Add(append(append([]byte{}, batched.Marshal()...), dupe.Bytes()...))
	// Truncated mid-message.
	full := batched.Marshal()
	f.Add(full[:len(full)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalQueryResponse(data)
		if err != nil {
			return
		}
		again, err := UnmarshalQueryResponse(m.Marshal())
		if err != nil {
			t.Fatalf("canonical re-encoding refused: %v", err)
		}
		if !bytes.Equal(m.Marshal(), again.Marshal()) {
			t.Fatal("decode/encode is not a fixed point")
		}
	})
}

// FuzzUnmarshalEnvelope drives the envelope decoder — the outermost frame
// every relay parses off the socket, now carrying the multi-hop route
// fields (repeated Route, scalar MaxHops) — with arbitrary bytes. Same
// properties as the other targets: never panic, reject crafted duplicate
// scalars, and once decoded, the canonical re-encoding is a fixed point.
func FuzzUnmarshalEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Envelope{Version: 1, Type: MsgQuery, RequestID: "r", Payload: []byte("p"),
		DeadlineUnixNano: 1_753_500_000_000_000_000, TimeoutNanos: 30_000_000_000}).Marshal())
	routed := &Envelope{Version: 1, Type: MsgQuery, RequestID: "r", Payload: []byte("p"),
		Route: []string{"we-trade", "hub-1-net"}, MaxHops: 4}
	f.Add(routed.Marshal())
	// A crafted duplicate scalar: valid routed encoding plus a second MaxHops.
	dupe := NewEncoder(8)
	dupe.Uint(8, 9)
	f.Add(append(append([]byte{}, routed.Marshal()...), dupe.Bytes()...))
	// Truncated mid-message.
	full := routed.Marshal()
	f.Add(full[:len(full)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		again, err := UnmarshalEnvelope(m.Marshal())
		if err != nil {
			t.Fatalf("canonical re-encoding refused: %v", err)
		}
		if !bytes.Equal(m.Marshal(), again.Marshal()) {
			t.Fatal("decode/encode is not a fixed point")
		}
	})
}

// FuzzUnmarshalQuery covers the request side including the AcceptBatched
// capability bit and repeated Args.
func FuzzUnmarshalQuery(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Query{RequestID: "r", Contract: "c", Function: "f",
		Args: [][]byte{[]byte("a"), []byte("b")}, AcceptBatched: true,
		Nonce: []byte("nonce"), PolicyDigest: []byte("pd")}).Marshal())
	dupe := NewEncoder(8)
	dupe.Bool(13, true)
	valid := (&Query{RequestID: "r", AcceptBatched: true}).Marshal()
	f.Add(append(append([]byte{}, valid...), dupe.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalQuery(data)
		if err != nil {
			return
		}
		again, err := UnmarshalQuery(m.Marshal())
		if err != nil {
			t.Fatalf("canonical re-encoding refused: %v", err)
		}
		if !bytes.Equal(m.Marshal(), again.Marshal()) {
			t.Fatal("decode/encode is not a fixed point")
		}
	})
}
