package wire

import (
	"math/rand"
	"testing"
)

// TestUnmarshalNeverPanics feeds deterministic pseudo-random byte strings
// to every message decoder: decoders must fail cleanly (or succeed on
// coincidentally valid input), never panic. This is the property that keeps
// a relay alive in the face of malicious peers.
func TestUnmarshalNeverPanics(t *testing.T) {
	decoders := map[string]func([]byte) error{
		"envelope":      func(b []byte) error { _, err := UnmarshalEnvelope(b); return err },
		"query":         func(b []byte) error { _, err := UnmarshalQuery(b); return err },
		"queryResponse": func(b []byte) error { _, err := UnmarshalQueryResponse(b); return err },
		"attestation":   func(b []byte) error { _, err := UnmarshalAttestation(b); return err },
		"metadata":      func(b []byte) error { _, err := UnmarshalMetadata(b); return err },
		"networkConfig": func(b []byte) error { _, err := UnmarshalNetworkConfig(b); return err },
		"orgConfig":     func(b []byte) error { _, err := UnmarshalOrgConfig(b); return err },
		"event":         func(b []byte) error { _, err := UnmarshalEvent(b); return err },
		"subscription":  func(b []byte) error { _, err := UnmarshalSubscription(b); return err },
	}
	rng := rand.New(rand.NewSource(42))
	for name, decode := range decoders {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 2000; i++ {
				n := rng.Intn(256)
				buf := make([]byte, n)
				rng.Read(buf)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("panic on input %x: %v", buf, r)
						}
					}()
					_ = decode(buf)
				}()
			}
		})
	}
}

// TestUnmarshalMutatedValidMessages mutates single bytes of valid encodings
// — the adversarial case of a relay flipping bits — and checks decoders
// stay panic-free and structurally sound.
func TestUnmarshalMutatedValidMessages(t *testing.T) {
	q := &Query{
		RequestID: "req", RequestingNetwork: "a", TargetNetwork: "b",
		Ledger: "default", Contract: "cc", Function: "fn",
		Args: [][]byte{[]byte("x")}, PolicyExpr: "'o'",
		RequesterCertPEM: []byte("cert"), Nonce: []byte("nonce"),
	}
	valid := q.Marshal()
	for i := range valid {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mutated := make([]byte, len(valid))
			copy(mutated, valid)
			mutated[i] ^= flip
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at byte %d flip %x: %v", i, flip, r)
					}
				}()
				_, _ = UnmarshalQuery(mutated)
			}()
		}
	}
}

// TestDeepNestingBounded checks that deeply nested embedded messages in a
// NetworkConfig do not exhaust the stack: nesting is bounded by the message
// schema (configs hold orgs hold strings), so a hostile deep nest is just
// skipped fields.
func TestDeepNestingBounded(t *testing.T) {
	// Build 1000 levels of field-3 message nesting.
	inner := []byte{}
	for i := 0; i < 1000; i++ {
		e := NewEncoder(len(inner) + 8)
		e.Message(3, inner)
		inner = e.Bytes()
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic on deep nesting: %v", r)
		}
	}()
	_, _ = UnmarshalNetworkConfig(inner)
}
