// Package wire implements the network-neutral communication protocol the
// relays speak (§3.2 of the paper). The paper specifies the protocol with
// Protocol Buffers; this implementation provides an equivalent
// tag/length/value binary codec built only on the standard library, with the
// same wire model: each field is a varint key carrying a field number and a
// wire type, followed by either a varint scalar or a length-delimited byte
// string. Messages round-trip deterministically and unknown fields are
// skipped, which preserves protobuf's forward-compatibility property.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire types, mirroring the protobuf wire format.
const (
	wireVarint = 0 // uint64 varint scalars
	wireBytes  = 2 // length-delimited byte strings
)

var (
	// ErrTruncated is returned when a buffer ends mid-field.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrMalformed is returned for structurally invalid encodings.
	ErrMalformed = errors.New("wire: malformed message")
	// ErrTooLarge is returned when a length prefix exceeds sane bounds.
	ErrTooLarge = errors.New("wire: field exceeds size limit")
)

// maxFieldLen bounds any single length-delimited field. Cross-network query
// results are documents (bills of lading, letters of credit), not bulk data.
const maxFieldLen = 64 << 20 // 64 MiB

// Encoder accumulates an encoded message.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with the given initial capacity hint.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded message. The returned slice aliases the
// encoder's internal buffer; callers must not mutate it while continuing to
// use the encoder.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uint writes a varint scalar field. Zero values are omitted, as in proto3.
func (e *Encoder) Uint(field int, v uint64) {
	if v == 0 {
		return
	}
	e.key(field, wireVarint)
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Bool writes a bool field as a 0/1 varint. False is omitted.
func (e *Encoder) Bool(field int, v bool) {
	if v {
		e.Uint(field, 1)
	}
}

// BytesField writes a length-delimited field. Empty slices are omitted.
func (e *Encoder) BytesField(field int, v []byte) {
	if len(v) == 0 {
		return
	}
	e.key(field, wireBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String writes a length-delimited string field. Empty strings are omitted.
func (e *Encoder) String(field int, v string) {
	if len(v) == 0 {
		return
	}
	e.key(field, wireBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Message writes an embedded message field from its already-encoded form.
// Unlike BytesField, empty messages are still written so that the presence
// of an element in a repeated field is preserved.
func (e *Encoder) Message(field int, encoded []byte) {
	e.key(field, wireBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(encoded)))
	e.buf = append(e.buf, encoded...)
}

func (e *Encoder) key(field, wireType int) {
	e.buf = binary.AppendUvarint(e.buf, uint64(field)<<3|uint64(wireType))
}

// Decoder iterates the fields of an encoded message.
type Decoder struct {
	buf         []byte
	pos         int
	pendingWire int
}

// NewDecoder returns a Decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Next advances to the next field, returning its field number. It returns
// ok=false at the clean end of the buffer and an error for malformed input.
func (d *Decoder) Next() (field int, ok bool, err error) {
	if d.pos >= len(d.buf) {
		return 0, false, nil
	}
	key, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, false, fmt.Errorf("%w: bad field key", ErrMalformed)
	}
	d.pos += n
	d.pendingWire = int(key & 7)
	field = int(key >> 3)
	if field == 0 {
		return 0, false, fmt.Errorf("%w: field number 0", ErrMalformed)
	}
	return field, true, nil
}

// Uint reads the current field as a varint scalar.
func (d *Decoder) Uint() (uint64, error) {
	if d.pendingWire != wireVarint {
		return 0, fmt.Errorf("%w: expected varint wire type", ErrMalformed)
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.pos += n
	return v, nil
}

// Bool reads the current field as a bool.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint()
	return v != 0, err
}

// Bytes reads the current field as a length-delimited byte string. The
// returned slice aliases the input buffer.
func (d *Decoder) Bytes() ([]byte, error) {
	if d.pendingWire != wireBytes {
		return nil, fmt.Errorf("%w: expected bytes wire type", ErrMalformed)
	}
	length, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return nil, ErrTruncated
	}
	if length > maxFieldLen {
		return nil, ErrTooLarge
	}
	d.pos += n
	if uint64(len(d.buf)-d.pos) < length {
		return nil, ErrTruncated
	}
	out := d.buf[d.pos : d.pos+int(length)]
	d.pos += int(length)
	return out, nil
}

// BytesCopy reads the current field as bytes and copies it out of the input
// buffer, for values retained past the decode call.
func (d *Decoder) BytesCopy() ([]byte, error) {
	b, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// String reads the current field as a string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// ScalarGuard rejects duplicate occurrences of scalar (non-repeated)
// fields while decoding a message. Every encoder in this package omits
// zero values, so a well-formed message never carries the same scalar
// field twice; when a decoder sees a second occurrence the input is
// either corrupt or crafted to exploit last-write-wins field resolution
// (e.g. a sealed proof bundle smuggling a second Response payload behind
// the one that was verified). Repeated fields and unknown fields are not
// tracked. Field numbers must be below 64.
type ScalarGuard struct {
	seen uint64
}

// Mark records an occurrence of a scalar field, returning ErrMalformed
// (wrapped) if the field was already seen in this message.
func (g *ScalarGuard) Mark(field int) error {
	if field <= 0 || field >= 64 {
		return fmt.Errorf("%w: scalar field %d out of guard range", ErrMalformed, field)
	}
	bit := uint64(1) << uint(field)
	if g.seen&bit != 0 {
		return fmt.Errorf("%w: duplicate scalar field %d", ErrMalformed, field)
	}
	g.seen |= bit
	return nil
}

// Check marks field when it appears in the scalars bitmask (as built by
// FieldMask), returning an error on a duplicate occurrence. Fields
// outside the mask — repeated fields and unknown fields — pass
// unconditionally, preserving forward compatibility.
func (g *ScalarGuard) Check(field int, scalars uint64) error {
	if field <= 0 || field >= 64 || scalars&(uint64(1)<<uint(field)) == 0 {
		return nil
	}
	return g.Mark(field)
}

// FieldMask builds the scalar-field bitmask for ScalarGuard.Check from a
// list of field numbers. It panics on field numbers outside (0, 64),
// which is a programming error in the message definition, not bad input.
func FieldMask(fields ...int) uint64 {
	var mask uint64
	for _, f := range fields {
		if f <= 0 || f >= 64 {
			panic(fmt.Sprintf("wire: FieldMask field %d out of range", f))
		}
		mask |= uint64(1) << uint(f)
	}
	return mask
}

// Skip discards the current field, whatever its type.
func (d *Decoder) Skip() error {
	switch d.pendingWire {
	case wireVarint:
		_, err := d.Uint()
		return err
	case wireBytes:
		_, err := d.Bytes()
		return err
	default:
		return fmt.Errorf("%w: unsupported wire type %d", ErrMalformed, d.pendingWire)
	}
}
