package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte("first"),
		{},
		bytes.Repeat([]byte{0xAB}, 10_000),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected io.EOF at end, got %v", err)
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	r := bytes.NewReader([]byte{0, 0})
	if _, err := ReadFrame(r); err == nil || err == io.EOF {
		t.Fatalf("truncated header gave %v", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, []byte("full payload"))
	data := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestReadFrameOversized(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame gave %v", err)
	}
}

func TestWriteFrameOversized(t *testing.T) {
	// Construct a fake oversized slice header without allocating 96 MiB:
	// allocate just over the limit only if the limit is small enough to be
	// practical; otherwise skip.
	payload := make([]byte, MaxFrameSize+1)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write gave %v", err)
	}
}
