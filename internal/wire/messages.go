package wire

import (
	"fmt"

	"repro/internal/cryptoutil"
)

// ProtocolVersion identifies the relay protocol revision. A relay rejects
// envelopes from a newer major version.
const ProtocolVersion = 1

// MsgType discriminates envelope payloads exchanged between relays.
type MsgType int

const (
	// MsgQuery carries a Query from a destination relay to a source relay.
	MsgQuery MsgType = iota + 1
	// MsgQueryResponse carries a QueryResponse back.
	MsgQueryResponse
	// MsgError carries an error string for a failed request.
	MsgError
	// MsgPing and MsgPong implement relay liveness probing.
	MsgPing
	MsgPong
	// MsgEvent carries an asynchronous event notification from a source
	// relay to a subscribed destination relay (paper §7 future work:
	// cross-network events).
	MsgEvent
	// MsgSubscribe registers an event subscription with a source relay.
	MsgSubscribe
	// MsgInvoke carries a cross-network transaction request (paper §5:
	// the query protocol extended to chaincode invocations).
	MsgInvoke
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case MsgQuery:
		return "query"
	case MsgQueryResponse:
		return "query-response"
	case MsgError:
		return "error"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgEvent:
		return "event"
	case MsgSubscribe:
		return "subscribe"
	case MsgInvoke:
		return "invoke"
	default:
		return fmt.Sprintf("msgtype(%d)", int(t))
	}
}

// Envelope is the outermost frame exchanged between relays: a message type,
// a correlation ID and a typed payload.
type Envelope struct {
	Version   uint64
	Type      MsgType
	RequestID string
	Payload   []byte
	// DeadlineUnixNano is the absolute deadline of the requester's context
	// (nanoseconds since the Unix epoch), zero when unbounded. The source
	// relay derives its serving context from it, so the remaining time
	// budget travels with the request instead of resetting at every hop.
	// Being an absolute timestamp it assumes the consortium's relays run
	// reasonably synchronized clocks (NTP-class skew); a relay whose clock
	// is far behind the requester's would see an inflated budget, one far
	// ahead a shrunken one.
	DeadlineUnixNano uint64
	// TimeoutNanos is the same budget encoded relative: the time remaining
	// at the instant the sender stamped the envelope (gRPC-style). Senders
	// stamp both fields; receivers take the laxer interpretation (the later
	// effective deadline), which removes the clock-sync assumption — under
	// skew the relative encoding is off only by the one-way transit time,
	// so a relay with a fast clock no longer kills requests on arrival.
	// Zero when unbounded or when stamped by an older relay.
	TimeoutNanos uint64
	// Route lists the network IDs of the relays this envelope has already
	// traversed, origin first. A relay appends its own network before
	// forwarding, and refuses to forward an envelope whose route already
	// names it — cycles are rejected structurally, without inspecting the
	// route table that produced them. Empty on single-hop requests, which
	// keeps their encoding byte-identical to older relays.
	Route []string
	// MaxHops bounds the walk: the maximum number of relay-to-relay
	// transport legs this envelope may make, stamped by the origin when it
	// routes via a table. A forwarder refuses when the next leg would
	// exceed it. Zero means the forwarder's own default applies.
	MaxHops uint64
}

// Marshal encodes the envelope.
func (m *Envelope) Marshal() []byte {
	e := NewEncoder(16 + len(m.RequestID) + len(m.Payload))
	e.Uint(1, m.Version)
	e.Uint(2, uint64(m.Type))
	e.String(3, m.RequestID)
	e.BytesField(4, m.Payload)
	e.Uint(5, m.DeadlineUnixNano)
	e.Uint(6, m.TimeoutNanos)
	for _, hop := range m.Route {
		e.Message(7, []byte(hop))
	}
	e.Uint(8, m.MaxHops)
	return e.Bytes()
}

// envelopeScalars omits field 7 (Route), the only repeated field.
var envelopeScalars = FieldMask(1, 2, 3, 4, 5, 6, 8)

// UnmarshalEnvelope decodes an Envelope.
func UnmarshalEnvelope(buf []byte) (*Envelope, error) {
	m := &Envelope{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("envelope: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, envelopeScalars); err != nil {
			return nil, fmt.Errorf("envelope field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.Version, err = d.Uint()
		case 2:
			var v uint64
			v, err = d.Uint()
			m.Type = MsgType(v)
		case 3:
			m.RequestID, err = d.String()
		case 4:
			m.Payload, err = d.BytesCopy()
		case 5:
			m.DeadlineUnixNano, err = d.Uint()
		case 6:
			m.TimeoutNanos, err = d.Uint()
		case 7:
			var hop string
			hop, err = d.String()
			m.Route = append(m.Route, hop)
		case 8:
			m.MaxHops, err = d.Uint()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("envelope field %d: %w", field, err)
		}
	}
}

// RouteContains reports whether the envelope's route already names the
// given network.
func (m *Envelope) RouteContains(network string) bool {
	for _, hop := range m.Route {
		if hop == network {
			return true
		}
	}
	return false
}

// Query is the cross-network data request (Fig. 2 step 1): it addresses a
// network, ledger, contract and function, carries the requester's
// authentication certificate and nonce, and states the verification policy
// the source network must satisfy when assembling the proof.
type Query struct {
	RequestID         string
	RequestingNetwork string // destination network issuing the query
	TargetNetwork     string // source network holding the data
	Ledger            string
	Contract          string
	Function          string
	Args              [][]byte
	PolicyExpr        string // verification policy, e.g. AND('seller-org','carrier-org')
	RequesterCertPEM  []byte // client certificate for auth + result encryption
	RequesterOrg      string
	Nonce             []byte // replay protection, echoed in signed metadata
	// PolicyDigest pins the verification policy at request time: the digest
	// of the exact policy expression the requester resolved (see
	// proof.PolicyDigest). The source relay refuses a query whose expression
	// does not match its pin, the proof it builds carries the pin, and the
	// requester refuses a response built under any other pin — so requester
	// and responder agree on exactly which policy the proof must satisfy.
	// Empty on requests from older clients (no pinning).
	PolicyDigest []byte
	// AcceptBatched announces that the requester can verify Merkle-batched
	// attestations (root signature + per-leaf inclusion proof). A source
	// relay only routes a query through its batching window when this is
	// set; queries from older clients keep receiving per-query signatures.
	AcceptBatched bool
	// AcceptSessioned announces that the requester can decrypt sessioned
	// ECIES envelopes (session ephemeral point + generation in explicit
	// fields, per-query AEAD key derived from a cached ECDH secret). A
	// source relay only amortizes ECIES for requesters that set this;
	// queries from older clients keep receiving byte-identical classic
	// per-query ECIES envelopes.
	AcceptSessioned bool
}

// InteropKey derives the ledger-level exactly-once identity of this
// request: the requester's network and certificate digest bound to the
// request ID, so one requester cannot occupy or poison another's ID space
// (request IDs travel in plaintext). The same derivation is used by the
// relay's in-memory replay cache and by the transaction metadata committed
// on the source ledger, which is what lets a second relay fronting the same
// network recognise a request its sibling already committed. Empty when the
// query carries no request ID — such requests have no exactly-once
// identity.
func (m *Query) InteropKey() string {
	if m.RequestID == "" {
		return ""
	}
	return m.RequestingNetwork + "\x00" + cryptoutil.DigestHex(m.RequesterCertPEM) + "\x00" + m.RequestID
}

// Marshal encodes the query.
func (m *Query) Marshal() []byte {
	e := NewEncoder(128)
	e.String(1, m.RequestID)
	e.String(2, m.RequestingNetwork)
	e.String(3, m.TargetNetwork)
	e.String(4, m.Ledger)
	e.String(5, m.Contract)
	e.String(6, m.Function)
	for _, a := range m.Args {
		e.Message(7, a)
	}
	e.String(8, m.PolicyExpr)
	e.BytesField(9, m.RequesterCertPEM)
	e.String(10, m.RequesterOrg)
	e.BytesField(11, m.Nonce)
	e.BytesField(12, m.PolicyDigest)
	e.Bool(13, m.AcceptBatched)
	e.Bool(14, m.AcceptSessioned)
	return e.Bytes()
}

// queryScalars omits field 7 (Args), the only repeated field.
var queryScalars = FieldMask(1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14)

// UnmarshalQuery decodes a Query.
func UnmarshalQuery(buf []byte) (*Query, error) {
	m := &Query{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, queryScalars); err != nil {
			return nil, fmt.Errorf("query field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.RequestID, err = d.String()
		case 2:
			m.RequestingNetwork, err = d.String()
		case 3:
			m.TargetNetwork, err = d.String()
		case 4:
			m.Ledger, err = d.String()
		case 5:
			m.Contract, err = d.String()
		case 6:
			m.Function, err = d.String()
		case 7:
			var arg []byte
			arg, err = d.BytesCopy()
			m.Args = append(m.Args, arg)
		case 8:
			m.PolicyExpr, err = d.String()
		case 9:
			m.RequesterCertPEM, err = d.BytesCopy()
		case 10:
			m.RequesterOrg, err = d.String()
		case 11:
			m.Nonce, err = d.BytesCopy()
		case 12:
			m.PolicyDigest, err = d.BytesCopy()
		case 13:
			m.AcceptBatched, err = d.Bool()
		case 14:
			m.AcceptSessioned, err = d.Bool()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("query field %d: %w", field, err)
		}
	}
}

// Attestation is one peer's contribution to a proof (Fig. 2 step 7): the
// peer signs the response metadata and encrypts the metadata so only the
// requesting client can read (and therefore use) it. The tuple mirrors the
// paper's <encrypted metadata, signature> proof element.
type Attestation struct {
	PeerName          string
	OrgID             string
	CertPEM           []byte // attestor certificate, validated against recorded config
	EncryptedMetadata []byte // ECIES to the requester; plaintext is a Metadata message
	Signature         []byte // ECDSA over the plaintext metadata bytes (single mode) or over the batch-root payload (batched mode)
	// BatchSize > 0 marks a Merkle-batched attestation: the attestor signed
	// the root of a Merkle tree over BatchSize leaf hashes (one per query in
	// the window) instead of this query's metadata directly. The Signature
	// then covers the domain-separated root payload, BatchIndex names this
	// query's leaf position, and BatchPath carries the sibling hashes of the
	// RFC 6962 inclusion proof from that leaf to the signed root. Zero for
	// classic single-signature attestations.
	BatchSize  uint64
	BatchIndex uint64
	BatchPath  [][]byte
	// SessionEphemeral, when non-empty, marks a sessioned ECIES envelope:
	// EncryptedMetadata is nonce||ciphertext under a per-query AEAD key
	// derived from the ECDH agreement between the requester's key and this
	// session ephemeral point, bound to SessionGeneration and the query
	// digest (cryptoutil.SessionDecrypt). Empty for classic per-query
	// ECIES, where the ephemeral point rides inline in the envelope.
	SessionEphemeral  []byte
	SessionGeneration uint64
}

// Marshal encodes the attestation.
func (m *Attestation) Marshal() []byte {
	e := NewEncoder(64 + len(m.CertPEM) + len(m.EncryptedMetadata) + len(m.Signature))
	e.String(1, m.PeerName)
	e.String(2, m.OrgID)
	e.BytesField(3, m.CertPEM)
	e.BytesField(4, m.EncryptedMetadata)
	e.BytesField(5, m.Signature)
	e.Uint(6, m.BatchSize)
	e.Uint(7, m.BatchIndex)
	for _, h := range m.BatchPath {
		e.Message(8, h)
	}
	e.BytesField(9, m.SessionEphemeral)
	e.Uint(10, m.SessionGeneration)
	return e.Bytes()
}

// attestationScalars omits field 8 (BatchPath), the only repeated field.
var attestationScalars = FieldMask(1, 2, 3, 4, 5, 6, 7, 9, 10)

// UnmarshalAttestation decodes an Attestation.
func UnmarshalAttestation(buf []byte) (*Attestation, error) {
	m := &Attestation{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("attestation: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, attestationScalars); err != nil {
			return nil, fmt.Errorf("attestation field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.PeerName, err = d.String()
		case 2:
			m.OrgID, err = d.String()
		case 3:
			m.CertPEM, err = d.BytesCopy()
		case 4:
			m.EncryptedMetadata, err = d.BytesCopy()
		case 5:
			m.Signature, err = d.BytesCopy()
		case 6:
			m.BatchSize, err = d.Uint()
		case 7:
			m.BatchIndex, err = d.Uint()
		case 8:
			var h []byte
			h, err = d.BytesCopy()
			m.BatchPath = append(m.BatchPath, h)
		case 9:
			m.SessionEphemeral, err = d.BytesCopy()
		case 10:
			m.SessionGeneration, err = d.Uint()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("attestation field %d: %w", field, err)
		}
	}
}

// Metadata is the plaintext signed by each attesting peer. It binds the
// query (so a proof cannot be replayed for a different question), the
// result digest (so the result cannot be swapped), the client nonce (replay
// protection) and the attestor identity.
type Metadata struct {
	NetworkID    string
	PeerName     string
	OrgID        string
	QueryDigest  []byte
	ResultDigest []byte
	Nonce        []byte
	UnixNano     uint64
	// PolicyDigest is the verification-policy pin the attestor was selected
	// under (proof.PolicyDigest of the query's policy expression). Being
	// inside the signed metadata, the pin itself is attested: a relay cannot
	// re-label a proof as satisfying a different policy. Empty for
	// attestations built without pinning.
	PolicyDigest []byte
}

// Marshal encodes the metadata.
func (m *Metadata) Marshal() []byte {
	e := NewEncoder(128)
	e.String(1, m.NetworkID)
	e.String(2, m.PeerName)
	e.String(3, m.OrgID)
	e.BytesField(4, m.QueryDigest)
	e.BytesField(5, m.ResultDigest)
	e.BytesField(6, m.Nonce)
	e.Uint(7, m.UnixNano)
	e.BytesField(8, m.PolicyDigest)
	return e.Bytes()
}

var metadataScalars = FieldMask(1, 2, 3, 4, 5, 6, 7, 8)

// UnmarshalMetadata decodes a Metadata message.
func UnmarshalMetadata(buf []byte) (*Metadata, error) {
	m := &Metadata{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("metadata: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, metadataScalars); err != nil {
			return nil, fmt.Errorf("metadata field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.NetworkID, err = d.String()
		case 2:
			m.PeerName, err = d.String()
		case 3:
			m.OrgID, err = d.String()
		case 4:
			m.QueryDigest, err = d.BytesCopy()
		case 5:
			m.ResultDigest, err = d.BytesCopy()
		case 6:
			m.Nonce, err = d.BytesCopy()
		case 7:
			m.UnixNano, err = d.Uint()
		case 8:
			m.PolicyDigest, err = d.BytesCopy()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("metadata field %d: %w", field, err)
		}
	}
}

// HopPin is one forwarding relay's contribution to the chained path proof
// of a multi-hop response. Each relay that forwarded the query signs the
// digest chain linking its predecessor's pin (or the response anchor, for
// the hop adjacent to the source) to its own identity, so the origin can
// authenticate the whole path, not just the source attestation. Pins are
// appended on the return path: index 0 is the hop nearest the source.
type HopPin struct {
	Network   string // network ID of the forwarding relay
	CertPEM   []byte // forwarding relay's certificate
	Pin       []byte // digest of the domain-separated chain payload
	Signature []byte // ECDSA by the relay's key over the chain payload
}

// Marshal encodes the hop pin.
func (m *HopPin) Marshal() []byte {
	e := NewEncoder(64 + len(m.CertPEM) + len(m.Pin) + len(m.Signature))
	e.String(1, m.Network)
	e.BytesField(2, m.CertPEM)
	e.BytesField(3, m.Pin)
	e.BytesField(4, m.Signature)
	return e.Bytes()
}

var hopPinScalars = FieldMask(1, 2, 3, 4)

// UnmarshalHopPin decodes a HopPin.
func UnmarshalHopPin(buf []byte) (*HopPin, error) {
	m := &HopPin{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("hop pin: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, hopPinScalars); err != nil {
			return nil, fmt.Errorf("hop pin field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.Network, err = d.String()
		case 2:
			m.CertPEM, err = d.BytesCopy()
		case 3:
			m.Pin, err = d.BytesCopy()
		case 4:
			m.Signature, err = d.BytesCopy()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("hop pin field %d: %w", field, err)
		}
	}
}

// QueryResponse carries the encrypted result plus the proof: one attestation
// per peer selected to satisfy the verification policy (Fig. 2 step 8).
type QueryResponse struct {
	RequestID       string
	EncryptedResult []byte
	Attestations    []Attestation
	Error           string
	// PolicyDigest echoes the verification-policy pin the proof was built
	// under. The requester refuses a response whose pin differs from the one
	// it stamped on the query. Empty on responses from older relays.
	PolicyDigest []byte
	// SessionEphemeral, when non-empty, marks EncryptedResult as a
	// sessioned ECIES envelope under the relay's result session (same
	// layout and derivation as Attestation.SessionEphemeral). Empty when
	// the result uses classic per-query ECIES.
	SessionEphemeral  []byte
	SessionGeneration uint64
	// HopPins carries the chained path proof of a multi-hop response: one
	// pin per forwarding relay, appended on the return path (index 0 is
	// the hop adjacent to the source network). Empty on single-hop
	// responses, keeping their encoding byte-identical to older relays.
	HopPins []HopPin
}

// Marshal encodes the response.
func (m *QueryResponse) Marshal() []byte {
	e := NewEncoder(256)
	e.String(1, m.RequestID)
	e.BytesField(2, m.EncryptedResult)
	for i := range m.Attestations {
		e.Message(3, m.Attestations[i].Marshal())
	}
	e.String(4, m.Error)
	e.BytesField(5, m.PolicyDigest)
	e.BytesField(6, m.SessionEphemeral)
	e.Uint(7, m.SessionGeneration)
	for i := range m.HopPins {
		e.Message(8, m.HopPins[i].Marshal())
	}
	return e.Bytes()
}

// queryResponseScalars omits fields 3 (Attestations) and 8 (HopPins), the
// repeated fields.
var queryResponseScalars = FieldMask(1, 2, 4, 5, 6, 7)

// UnmarshalQueryResponse decodes a QueryResponse.
func UnmarshalQueryResponse(buf []byte) (*QueryResponse, error) {
	m := &QueryResponse{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("query response: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, queryResponseScalars); err != nil {
			return nil, fmt.Errorf("query response field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.RequestID, err = d.String()
		case 2:
			m.EncryptedResult, err = d.BytesCopy()
		case 3:
			var raw []byte
			raw, err = d.Bytes()
			if err == nil {
				var att *Attestation
				att, err = UnmarshalAttestation(raw)
				if err == nil {
					m.Attestations = append(m.Attestations, *att)
				}
			}
		case 4:
			m.Error, err = d.String()
		case 5:
			m.PolicyDigest, err = d.BytesCopy()
		case 6:
			m.SessionEphemeral, err = d.BytesCopy()
		case 7:
			m.SessionGeneration, err = d.Uint()
		case 8:
			var raw []byte
			raw, err = d.Bytes()
			if err == nil {
				var pin *HopPin
				pin, err = UnmarshalHopPin(raw)
				if err == nil {
					m.HopPins = append(m.HopPins, *pin)
				}
			}
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("query response field %d: %w", field, err)
		}
	}
}

// OrgConfig describes one organization of a network in the shared
// configuration schema: its identity root and its peer endpoints.
type OrgConfig struct {
	OrgID       string
	RootCertPEM []byte
	PeerNames   []string
}

// Marshal encodes the org config.
func (m *OrgConfig) Marshal() []byte {
	e := NewEncoder(64 + len(m.RootCertPEM))
	e.String(1, m.OrgID)
	e.BytesField(2, m.RootCertPEM)
	for _, p := range m.PeerNames {
		e.String(3, p)
	}
	return e.Bytes()
}

// orgConfigScalars omits field 3 (PeerNames), the only repeated field.
var orgConfigScalars = FieldMask(1, 2)

// UnmarshalOrgConfig decodes an OrgConfig.
func UnmarshalOrgConfig(buf []byte) (*OrgConfig, error) {
	m := &OrgConfig{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("org config: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, orgConfigScalars); err != nil {
			return nil, fmt.Errorf("org config field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.OrgID, err = d.String()
		case 2:
			m.RootCertPEM, err = d.BytesCopy()
		case 3:
			var p string
			p, err = d.String()
			m.PeerNames = append(m.PeerNames, p)
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("org config field %d: %w", field, err)
		}
	}
}

// NetworkConfig is the identity and topology information one network records
// about another before interoperating (§3.3: "interoperating networks have a
// priori knowledge of each others' identities and configurations, recorded
// on their ledgers").
type NetworkConfig struct {
	NetworkID string
	Platform  string // e.g. "fabric", "notary"
	Orgs      []OrgConfig
}

// Marshal encodes the network config.
func (m *NetworkConfig) Marshal() []byte {
	e := NewEncoder(256)
	e.String(1, m.NetworkID)
	e.String(2, m.Platform)
	for i := range m.Orgs {
		e.Message(3, m.Orgs[i].Marshal())
	}
	return e.Bytes()
}

// networkConfigScalars omits field 3 (Orgs), the only repeated field.
var networkConfigScalars = FieldMask(1, 2)

// UnmarshalNetworkConfig decodes a NetworkConfig.
func UnmarshalNetworkConfig(buf []byte) (*NetworkConfig, error) {
	m := &NetworkConfig{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("network config: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, networkConfigScalars); err != nil {
			return nil, fmt.Errorf("network config field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.NetworkID, err = d.String()
		case 2:
			m.Platform, err = d.String()
		case 3:
			var raw []byte
			raw, err = d.Bytes()
			if err == nil {
				var org *OrgConfig
				org, err = UnmarshalOrgConfig(raw)
				if err == nil {
					m.Orgs = append(m.Orgs, *org)
				}
			}
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("network config field %d: %w", field, err)
		}
	}
}

// Event is an asynchronous cross-network notification (extension beyond the
// paper's query protocol; listed as future work in §7).
type Event struct {
	SubscriptionID string
	SourceNetwork  string
	Name           string
	Payload        []byte
	UnixNano       uint64
}

// Marshal encodes the event.
func (m *Event) Marshal() []byte {
	e := NewEncoder(64 + len(m.Payload))
	e.String(1, m.SubscriptionID)
	e.String(2, m.SourceNetwork)
	e.String(3, m.Name)
	e.BytesField(4, m.Payload)
	e.Uint(5, m.UnixNano)
	return e.Bytes()
}

var eventScalars = FieldMask(1, 2, 3, 4, 5)

// UnmarshalEvent decodes an Event.
func UnmarshalEvent(buf []byte) (*Event, error) {
	m := &Event{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("event: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, eventScalars); err != nil {
			return nil, fmt.Errorf("event field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.SubscriptionID, err = d.String()
		case 2:
			m.SourceNetwork, err = d.String()
		case 3:
			m.Name, err = d.String()
		case 4:
			m.Payload, err = d.BytesCopy()
		case 5:
			m.UnixNano, err = d.Uint()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("event field %d: %w", field, err)
		}
	}
}

// Subscription asks a source relay to forward chaincode events matching a
// name pattern to the requesting network's relay.
type Subscription struct {
	SubscriptionID    string
	RequestingNetwork string
	TargetNetwork     string
	EventName         string
	RequesterCertPEM  []byte
}

// Marshal encodes the subscription.
func (m *Subscription) Marshal() []byte {
	e := NewEncoder(128)
	e.String(1, m.SubscriptionID)
	e.String(2, m.RequestingNetwork)
	e.String(3, m.TargetNetwork)
	e.String(4, m.EventName)
	e.BytesField(5, m.RequesterCertPEM)
	return e.Bytes()
}

var subscriptionScalars = FieldMask(1, 2, 3, 4, 5)

// UnmarshalSubscription decodes a Subscription.
func UnmarshalSubscription(buf []byte) (*Subscription, error) {
	m := &Subscription{}
	d := NewDecoder(buf)
	var g ScalarGuard
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, fmt.Errorf("subscription: %w", err)
		}
		if !ok {
			return m, nil
		}
		if err := g.Check(field, subscriptionScalars); err != nil {
			return nil, fmt.Errorf("subscription field %d: %w", field, err)
		}
		switch field {
		case 1:
			m.SubscriptionID, err = d.String()
		case 2:
			m.RequestingNetwork, err = d.String()
		case 3:
			m.TargetNetwork, err = d.String()
		case 4:
			m.EventName, err = d.String()
		case 5:
			m.RequesterCertPEM, err = d.BytesCopy()
		default:
			err = d.Skip()
		}
		if err != nil {
			return nil, fmt.Errorf("subscription field %d: %w", field, err)
		}
	}
}
