// Package orderer implements the solo ordering service of the simulated
// platform: endorsed transactions are collected, cut into hash-chained
// blocks by batch size (or an explicit flush / batch timeout), and
// delivered in order to every registered consumer — the peers' committers.
//
// Two operating modes share one API. In the default synchronous mode,
// blocks are cut and delivered inside the Submit call that fills the batch
// — simple, deterministic, and what most unit tests use. In pipelined mode
// (Config.Pipelined) a background cutter goroutine owns batching: Submit
// enqueues and returns, blocks are cut when BatchSize transactions
// accumulate or BatchTimeout elapses since the batch opened, and a bounded
// queue applies backpressure to submitters. SubmitWait gives clients
// commit-coupled semantics in both modes.
package orderer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ledger"
)

var (
	// ErrStopped is returned when submitting to a stopped orderer.
	ErrStopped = errors.New("orderer: stopped")
)

// Consumer receives ordered blocks. Delivery is sequential and in block
// order; a consumer error aborts delivery of that block to later consumers
// and is reported to the submitter.
type Consumer interface {
	CommitBlock(*ledger.Block) error
}

// ConsumerFunc adapts a function to Consumer.
type ConsumerFunc func(*ledger.Block) error

// CommitBlock implements Consumer.
func (f ConsumerFunc) CommitBlock(b *ledger.Block) error { return f(b) }

// Config controls block cutting.
type Config struct {
	// BatchSize is the number of transactions per block. In synchronous
	// mode blocks are cut and delivered inside the Submit call that fills
	// the batch. Defaults to 1, which makes the whole pipeline synchronous.
	BatchSize int
	// BatchTimeout cuts a partial batch that has been pending for this
	// long. In synchronous mode it requires the Start timer; in pipelined
	// mode the cutter enforces it natively and it defaults to 2ms so a
	// lone transaction is never stranded waiting for a full batch.
	BatchTimeout time.Duration
	// Pipelined moves block cutting to a background goroutine so
	// submitters overlap with validation/commit of earlier blocks — the
	// load-scaling mode. Submit enqueues and returns; use SubmitWait to
	// couple a submitter to its block's delivery.
	Pipelined bool
	// MaxPending bounds the enqueued-but-uncut transactions in pipelined
	// mode; Submit blocks when the queue is full (backpressure instead of
	// unbounded memory). Defaults to 4×BatchSize.
	MaxPending int
}

// submission is one enqueued transaction; done, when non-nil, receives the
// delivery outcome of the block the transaction was cut into.
type submission struct {
	tx   *ledger.Transaction
	done chan error
}

// Orderer is a solo ordering service.
type Orderer struct {
	mu        sync.Mutex
	cfg       Config
	pending   []*ledger.Transaction // synchronous mode only
	consumers []Consumer
	nextNum   uint64
	tipHash   []byte
	stopped   bool
	lastErr   error // sticky delivery failure (pipelined mode)

	timerStop chan struct{}
	timerDone chan struct{}

	// Pipelined mode plumbing.
	submitCh   chan submission
	flushCh    chan chan error
	stopCh     chan struct{}
	cutterDone chan struct{}
	batchLen   int32 // atomic: transactions held by the cutter
}

// New creates an orderer with the given configuration. In pipelined mode
// the cutter goroutine starts immediately; Stop shuts it down.
func New(cfg Config) *Orderer {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	o := &Orderer{cfg: cfg}
	if cfg.Pipelined {
		if o.cfg.MaxPending <= 0 {
			o.cfg.MaxPending = 4 * o.cfg.BatchSize
		}
		if o.cfg.BatchTimeout <= 0 {
			o.cfg.BatchTimeout = 2 * time.Millisecond
		}
		o.submitCh = make(chan submission, o.cfg.MaxPending)
		o.flushCh = make(chan chan error)
		o.stopCh = make(chan struct{})
		o.cutterDone = make(chan struct{})
		go o.cutterLoop()
	}
	return o
}

// Register adds a block consumer. Consumers registered earlier receive each
// block first; networks register peers before auxiliary listeners so that
// validation codes are assigned before event dispatch.
func (o *Orderer) Register(c Consumer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.consumers = append(o.consumers, c)
}

// Submit orders a transaction. In synchronous mode, if the pending batch
// reaches the configured size the block is cut and delivered before Submit
// returns. In pipelined mode Submit enqueues and returns, blocking only
// when MaxPending transactions are already waiting.
func (o *Orderer) Submit(tx *ledger.Transaction) error {
	return o.submit(tx, nil)
}

// SubmitWait orders a transaction and does not return until the block
// containing it has been delivered (or delivery failed). This is the call
// for clients that need the transaction's validation code: in synchronous
// mode it flushes a partial batch holding the transaction; in pipelined
// mode it waits for the size or time trigger to cut the block.
func (o *Orderer) SubmitWait(tx *ledger.Transaction) error {
	if !o.cfg.Pipelined {
		if err := o.Submit(tx); err != nil {
			return err
		}
		// Validation is zero until a committer saw the transaction: the
		// batch hasn't filled, so force the cut.
		if tx.Validation == 0 {
			return o.Flush()
		}
		return nil
	}
	done := make(chan error, 1)
	if err := o.submit(tx, done); err != nil {
		return err
	}
	return <-done
}

func (o *Orderer) submit(tx *ledger.Transaction, done chan error) error {
	o.mu.Lock()
	if o.stopped {
		o.mu.Unlock()
		return ErrStopped
	}
	if !o.cfg.Pipelined {
		defer o.mu.Unlock()
		o.pending = append(o.pending, tx)
		if len(o.pending) >= o.cfg.BatchSize {
			return o.cutLocked()
		}
		return nil
	}
	o.mu.Unlock()
	select {
	case o.submitCh <- submission{tx: tx, done: done}:
		return nil
	case <-o.stopCh:
		return ErrStopped
	}
}

// Flush cuts a block from any pending transactions immediately. In
// pipelined mode it also drains the submission queue first and returns the
// sticky delivery error, if any block delivery has failed so far.
func (o *Orderer) Flush() error {
	if !o.cfg.Pipelined {
		o.mu.Lock()
		defer o.mu.Unlock()
		if len(o.pending) == 0 {
			return nil
		}
		return o.cutLocked()
	}
	o.mu.Lock()
	if o.stopped {
		defer o.mu.Unlock()
		return o.lastErr
	}
	o.mu.Unlock()
	ack := make(chan error, 1)
	select {
	case o.flushCh <- ack:
		// The cutter always replies once it has accepted the request.
		return <-ack
	case <-o.stopCh:
		<-o.cutterDone
		o.mu.Lock()
		defer o.mu.Unlock()
		return o.lastErr
	}
}

// Height returns the number of blocks delivered so far.
func (o *Orderer) Height() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.nextNum
}

// Pending returns the number of transactions waiting for the next cut.
func (o *Orderer) Pending() int {
	if o.cfg.Pipelined {
		return len(o.submitCh) + int(atomic.LoadInt32(&o.batchLen))
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending)
}

func (o *Orderer) cutLocked() error {
	block := &ledger.Block{
		Number:       o.nextNum,
		PrevHash:     o.tipHash,
		Transactions: o.pending,
	}
	o.pending = nil
	block.Hash = block.ComputeHash()
	for _, c := range o.consumers {
		if err := c.CommitBlock(block); err != nil {
			return fmt.Errorf("deliver block %d: %w", block.Number, err)
		}
	}
	o.nextNum++
	o.tipHash = block.Hash
	return nil
}

// cutterLoop is the pipelined mode's single block cutter: it owns the open
// batch, cuts on size or timeout, and delivers blocks strictly in order.
func (o *Orderer) cutterLoop() {
	defer close(o.cutterDone)
	var batch []submission
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerArmed := false

	disarm := func() {
		if timerArmed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerArmed = false
	}
	cut := func() {
		if len(batch) == 0 {
			return
		}
		disarm()
		o.deliverBatch(batch)
		batch = nil
		atomic.StoreInt32(&o.batchLen, 0)
	}
	add := func(s submission) {
		batch = append(batch, s)
		atomic.StoreInt32(&o.batchLen, int32(len(batch)))
		if len(batch) == 1 {
			timer.Reset(o.cfg.BatchTimeout)
			timerArmed = true
		}
		if len(batch) >= o.cfg.BatchSize {
			cut()
		}
	}
	drain := func() {
		for {
			select {
			case s := <-o.submitCh:
				add(s)
			default:
				return
			}
		}
	}

	for {
		select {
		case s := <-o.submitCh:
			add(s)
		case <-timer.C:
			timerArmed = false
			cut()
		case ack := <-o.flushCh:
			drain()
			cut()
			o.mu.Lock()
			err := o.lastErr
			o.mu.Unlock()
			ack <- err
		case <-o.stopCh:
			drain()
			cut()
			return
		}
	}
}

// deliverBatch cuts one block from the batch, delivers it, records any
// delivery failure, and resolves every coupled submitter.
func (o *Orderer) deliverBatch(batch []submission) {
	txs := make([]*ledger.Transaction, len(batch))
	for i, s := range batch {
		txs[i] = s.tx
	}
	o.mu.Lock()
	block := &ledger.Block{
		Number:       o.nextNum,
		PrevHash:     o.tipHash,
		Transactions: txs,
	}
	block.Hash = block.ComputeHash()
	consumers := append([]Consumer(nil), o.consumers...)
	o.mu.Unlock()

	var err error
	for _, c := range consumers {
		if cerr := c.CommitBlock(block); cerr != nil {
			err = fmt.Errorf("deliver block %d: %w", block.Number, cerr)
			break
		}
	}

	o.mu.Lock()
	if err != nil {
		o.lastErr = err
	} else {
		o.nextNum++
		o.tipHash = block.Hash
	}
	o.mu.Unlock()
	for _, s := range batch {
		if s.done != nil {
			s.done <- err
		}
	}
}

// Start launches the batch-timeout timer for the synchronous mode. It is a
// no-op when BatchTimeout is zero or in pipelined mode (whose cutter
// enforces the timeout natively). Stop must be called to release the
// goroutine.
func (o *Orderer) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cfg.Pipelined || o.cfg.BatchTimeout <= 0 || o.timerStop != nil {
		return
	}
	o.timerStop = make(chan struct{})
	o.timerDone = make(chan struct{})
	go o.timerLoop(o.timerStop, o.timerDone)
}

func (o *Orderer) timerLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(o.cfg.BatchTimeout)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Best-effort: a delivery failure surfaces on the next Submit
			// or Flush; the timer keeps running.
			_ = o.Flush()
		case <-stop:
			return
		}
	}
}

// Stop halts the timer or cutter, flushes any pending batch, and marks the
// orderer stopped. In pipelined mode it returns the sticky delivery error,
// if any.
func (o *Orderer) Stop() error {
	if o.cfg.Pipelined {
		o.mu.Lock()
		already := o.stopped
		o.stopped = true
		o.mu.Unlock()
		if !already {
			close(o.stopCh)
		}
		<-o.cutterDone
		o.mu.Lock()
		defer o.mu.Unlock()
		return o.lastErr
	}
	o.mu.Lock()
	stop, done := o.timerStop, o.timerDone
	o.timerStop, o.timerDone = nil, nil
	o.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stopped = true
	if len(o.pending) > 0 {
		return o.cutLocked()
	}
	return nil
}
