// Package orderer implements the solo ordering service of the simulated
// platform: endorsed transactions are collected, cut into hash-chained
// blocks by batch size (or an explicit flush / optional timer), and
// delivered in order to every registered consumer — the peers' committers.
package orderer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ledger"
)

var (
	// ErrStopped is returned when submitting to a stopped orderer.
	ErrStopped = errors.New("orderer: stopped")
)

// Consumer receives ordered blocks. Delivery is sequential and in block
// order; a consumer error aborts delivery of that block to later consumers
// and is reported to the submitter.
type Consumer interface {
	CommitBlock(*ledger.Block) error
}

// ConsumerFunc adapts a function to Consumer.
type ConsumerFunc func(*ledger.Block) error

// CommitBlock implements Consumer.
func (f ConsumerFunc) CommitBlock(b *ledger.Block) error { return f(b) }

// Config controls block cutting.
type Config struct {
	// BatchSize is the number of transactions per block. Blocks are cut
	// and delivered synchronously inside the Submit call that fills the
	// batch. Defaults to 1, which makes the whole pipeline synchronous.
	BatchSize int
	// BatchTimeout, when positive and the timer is started with Start,
	// cuts a partial batch that has been pending for this long.
	BatchTimeout time.Duration
}

// Orderer is a solo ordering service.
type Orderer struct {
	mu        sync.Mutex
	cfg       Config
	pending   []*ledger.Transaction
	consumers []Consumer
	nextNum   uint64
	tipHash   []byte
	stopped   bool

	timerStop chan struct{}
	timerDone chan struct{}
}

// New creates an orderer with the given configuration.
func New(cfg Config) *Orderer {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	return &Orderer{cfg: cfg}
}

// Register adds a block consumer. Consumers registered earlier receive each
// block first; networks register peers before auxiliary listeners so that
// validation codes are assigned before event dispatch.
func (o *Orderer) Register(c Consumer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.consumers = append(o.consumers, c)
}

// Submit orders a transaction. If the pending batch reaches the configured
// size, the block is cut and delivered before Submit returns.
func (o *Orderer) Submit(tx *ledger.Transaction) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.stopped {
		return ErrStopped
	}
	o.pending = append(o.pending, tx)
	if len(o.pending) >= o.cfg.BatchSize {
		return o.cutLocked()
	}
	return nil
}

// Flush cuts a block from any pending transactions immediately.
func (o *Orderer) Flush() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.pending) == 0 {
		return nil
	}
	return o.cutLocked()
}

// Height returns the number of blocks delivered so far.
func (o *Orderer) Height() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.nextNum
}

// Pending returns the number of transactions waiting for the next cut.
func (o *Orderer) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending)
}

func (o *Orderer) cutLocked() error {
	block := &ledger.Block{
		Number:       o.nextNum,
		PrevHash:     o.tipHash,
		Transactions: o.pending,
	}
	o.pending = nil
	block.Hash = block.ComputeHash()
	for _, c := range o.consumers {
		if err := c.CommitBlock(block); err != nil {
			return fmt.Errorf("deliver block %d: %w", block.Number, err)
		}
	}
	o.nextNum++
	o.tipHash = block.Hash
	return nil
}

// Start launches the batch-timeout timer. It is a no-op when BatchTimeout
// is zero. Stop must be called to release the goroutine.
func (o *Orderer) Start() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.cfg.BatchTimeout <= 0 || o.timerStop != nil {
		return
	}
	o.timerStop = make(chan struct{})
	o.timerDone = make(chan struct{})
	go o.timerLoop(o.timerStop, o.timerDone)
}

func (o *Orderer) timerLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(o.cfg.BatchTimeout)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Best-effort: a delivery failure surfaces on the next Submit
			// or Flush; the timer keeps running.
			_ = o.Flush()
		case <-stop:
			return
		}
	}
}

// Stop halts the timer (if running), flushes any pending batch, and marks
// the orderer stopped.
func (o *Orderer) Stop() error {
	o.mu.Lock()
	stop, done := o.timerStop, o.timerDone
	o.timerStop, o.timerDone = nil, nil
	o.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stopped = true
	if len(o.pending) > 0 {
		return o.cutLocked()
	}
	return nil
}
