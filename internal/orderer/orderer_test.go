package orderer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
)

func tx(id string) *ledger.Transaction {
	return &ledger.Transaction{ID: id, Chaincode: "cc", Function: "fn"}
}

type capture struct {
	mu     sync.Mutex
	blocks []*ledger.Block
}

func (c *capture) CommitBlock(b *ledger.Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocks = append(c.blocks, b)
	return nil
}

func (c *capture) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blocks)
}

func TestBatchSizeOneIsSynchronous(t *testing.T) {
	o := New(Config{BatchSize: 1})
	c := &capture{}
	o.Register(c)
	if err := o.Submit(tx("a")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if c.count() != 1 {
		t.Fatalf("blocks = %d", c.count())
	}
	if o.Height() != 1 || o.Pending() != 0 {
		t.Fatalf("height=%d pending=%d", o.Height(), o.Pending())
	}
}

func TestBatching(t *testing.T) {
	o := New(Config{BatchSize: 3})
	c := &capture{}
	o.Register(c)
	_ = o.Submit(tx("a"))
	_ = o.Submit(tx("b"))
	if c.count() != 0 || o.Pending() != 2 {
		t.Fatalf("premature cut: blocks=%d pending=%d", c.count(), o.Pending())
	}
	_ = o.Submit(tx("c"))
	if c.count() != 1 {
		t.Fatalf("blocks = %d", c.count())
	}
	if got := len(c.blocks[0].Transactions); got != 3 {
		t.Fatalf("block tx count = %d", got)
	}
}

func TestFlushCutsPartialBatch(t *testing.T) {
	o := New(Config{BatchSize: 100})
	c := &capture{}
	o.Register(c)
	_ = o.Submit(tx("a"))
	if err := o.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if c.count() != 1 || len(c.blocks[0].Transactions) != 1 {
		t.Fatalf("flush did not cut: %d", c.count())
	}
	// Flushing an empty batch is a no-op.
	if err := o.Flush(); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
	if c.count() != 1 {
		t.Fatal("empty flush cut a block")
	}
}

func TestBlocksAreChained(t *testing.T) {
	o := New(Config{BatchSize: 1})
	c := &capture{}
	o.Register(c)
	for _, id := range []string{"a", "b", "c"} {
		_ = o.Submit(tx(id))
	}
	if c.count() != 3 {
		t.Fatalf("blocks = %d", c.count())
	}
	for i, b := range c.blocks {
		if b.Number != uint64(i) {
			t.Fatalf("block %d numbered %d", i, b.Number)
		}
		if i > 0 && string(b.PrevHash) != string(c.blocks[i-1].Hash) {
			t.Fatalf("block %d not chained", i)
		}
	}
}

func TestConsumerErrorPropagates(t *testing.T) {
	o := New(Config{BatchSize: 1})
	boom := errors.New("boom")
	o.Register(ConsumerFunc(func(*ledger.Block) error { return boom }))
	if err := o.Submit(tx("a")); !errors.Is(err, boom) {
		t.Fatalf("Submit: %v", err)
	}
}

func TestStopFlushesAndRejects(t *testing.T) {
	o := New(Config{BatchSize: 10})
	c := &capture{}
	o.Register(c)
	_ = o.Submit(tx("a"))
	if err := o.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if c.count() != 1 {
		t.Fatal("Stop did not flush")
	}
	if err := o.Submit(tx("b")); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Stop: %v", err)
	}
}

func TestTimerCutsBatch(t *testing.T) {
	o := New(Config{BatchSize: 100, BatchTimeout: 10 * time.Millisecond})
	c := &capture{}
	o.Register(c)
	o.Start()
	defer func() { _ = o.Stop() }()
	_ = o.Submit(tx("a"))
	deadline := time.Now().Add(2 * time.Second)
	for c.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.count() == 0 {
		t.Fatal("timer never cut the batch")
	}
}

func TestStartIdempotentAndStopWithoutStart(t *testing.T) {
	o := New(Config{BatchTimeout: time.Millisecond})
	o.Start()
	o.Start() // second Start must not spawn a second timer
	if err := o.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	o2 := New(Config{})
	if err := o2.Stop(); err != nil {
		t.Fatalf("Stop without Start: %v", err)
	}
}

func TestDefaultBatchSize(t *testing.T) {
	o := New(Config{})
	c := &capture{}
	o.Register(c)
	_ = o.Submit(tx("a"))
	if c.count() != 1 {
		t.Fatal("default batch size is not 1")
	}
}
