package orderer

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
)

func (c *capture) blockSizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	sizes := make([]int, len(c.blocks))
	for i, b := range c.blocks {
		sizes[i] = len(b.Transactions)
	}
	return sizes
}

func TestPipelinedSizeCut(t *testing.T) {
	o := New(Config{Pipelined: true, BatchSize: 4, BatchTimeout: time.Hour})
	defer o.Stop()
	c := &capture{}
	o.Register(c)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := o.SubmitWait(tx(fmt.Sprintf("t%d", i))); err != nil {
				t.Errorf("SubmitWait t%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := c.blockSizes(); len(got) != 2 || got[0] != 4 || got[1] != 4 {
		t.Fatalf("block sizes = %v, want [4 4]", got)
	}
	if o.Height() != 2 {
		t.Fatalf("height = %d, want 2", o.Height())
	}
}

func TestPipelinedTimeoutCutsPartialBatch(t *testing.T) {
	// A lone transaction must not be stranded behind an unfillable batch:
	// the cutter's timer cuts it, and SubmitWait returns once it commits.
	o := New(Config{Pipelined: true, BatchSize: 100, BatchTimeout: 5 * time.Millisecond})
	defer o.Stop()
	c := &capture{}
	o.Register(c)
	done := make(chan error, 1)
	go func() { done <- o.SubmitWait(tx("lonely")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SubmitWait: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitWait stuck: timeout never cut the partial batch")
	}
	if got := c.blockSizes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("block sizes = %v, want [1]", got)
	}
}

func TestPipelinedSubmitWaitSeesValidation(t *testing.T) {
	// SubmitWait's contract: when it returns, a committer has assigned the
	// transaction's validation code — the property Gateway.SubmitTx and the
	// relay invoke path rely on.
	o := New(Config{Pipelined: true, BatchSize: 2, BatchTimeout: time.Millisecond})
	defer o.Stop()
	o.Register(ConsumerFunc(func(b *ledger.Block) error {
		for _, tx := range b.Transactions {
			tx.Validation = ledger.Valid
		}
		return nil
	}))
	transaction := tx("v")
	if err := o.SubmitWait(transaction); err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if transaction.Validation != ledger.Valid {
		t.Fatalf("validation = %v after SubmitWait, want Valid", transaction.Validation)
	}
}

func TestPipelinedFlushDrainsQueue(t *testing.T) {
	o := New(Config{Pipelined: true, BatchSize: 50, BatchTimeout: time.Hour, MaxPending: 64})
	defer o.Stop()
	c := &capture{}
	o.Register(c)
	for i := 0; i < 7; i++ {
		if err := o.Submit(tx(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := o.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	c.mu.Lock()
	total := 0
	for _, b := range c.blocks {
		total += len(b.Transactions)
	}
	c.mu.Unlock()
	if total != 7 {
		t.Fatalf("flushed %d transactions, want 7", total)
	}
	if o.Pending() != 0 {
		t.Fatalf("pending = %d after flush", o.Pending())
	}
}

func TestPipelinedBlocksAreChained(t *testing.T) {
	o := New(Config{Pipelined: true, BatchSize: 1})
	defer o.Stop()
	c := &capture{}
	o.Register(c)
	for i := 0; i < 3; i++ {
		if err := o.SubmitWait(tx(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatalf("SubmitWait: %v", err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(c.blocks))
	}
	for i, b := range c.blocks {
		if b.Number != uint64(i) {
			t.Fatalf("block %d numbered %d", i, b.Number)
		}
		if i > 0 && !bytes.Equal(b.PrevHash, c.blocks[i-1].Hash) {
			t.Fatalf("block %d not chained to its predecessor", i)
		}
	}
}

func TestPipelinedConsumerErrorIsStickyAndReported(t *testing.T) {
	boom := errors.New("boom")
	o := New(Config{Pipelined: true, BatchSize: 1})
	o.Register(ConsumerFunc(func(*ledger.Block) error { return boom }))
	if err := o.SubmitWait(tx("x")); !errors.Is(err, boom) {
		t.Fatalf("SubmitWait error = %v, want %v", err, boom)
	}
	// The failure is sticky: Stop reports it too.
	if err := o.Stop(); !errors.Is(err, boom) {
		t.Fatalf("Stop error = %v, want %v", err, boom)
	}
}

func TestPipelinedStopRejectsAndFlushes(t *testing.T) {
	o := New(Config{Pipelined: true, BatchSize: 100, BatchTimeout: time.Hour})
	c := &capture{}
	o.Register(c)
	if err := o.Submit(tx("pending")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := o.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// The pending transaction was cut on the way down, not dropped.
	if c.count() != 1 {
		t.Fatalf("blocks = %d, want 1 (stop flushes)", c.count())
	}
	if err := o.Submit(tx("late")); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after stop = %v, want ErrStopped", err)
	}
	if err := o.SubmitWait(tx("late2")); !errors.Is(err, ErrStopped) {
		t.Fatalf("SubmitWait after stop = %v, want ErrStopped", err)
	}
	// Stop twice is safe.
	if err := o.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestPipelinedConcurrentSubmitWaitAllCommit(t *testing.T) {
	// Many concurrent waiters across many blocks: every SubmitWait returns,
	// every transaction lands in exactly one block, order within the stream
	// is preserved per submitter (trivially, one tx each).
	o := New(Config{Pipelined: true, BatchSize: 8, BatchTimeout: time.Millisecond, MaxPending: 16})
	defer o.Stop()
	c := &capture{}
	o.Register(c)
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := o.SubmitWait(tx(fmt.Sprintf("m%d", i))); err != nil {
				t.Errorf("SubmitWait m%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]int)
	for _, b := range c.blocks {
		for _, tr := range b.Transactions {
			seen[tr.ID]++
		}
	}
	if len(seen) != n {
		t.Fatalf("distinct committed txs = %d, want %d", len(seen), n)
	}
	for id, count := range seen {
		if count != 1 {
			t.Fatalf("tx %s committed %d times", id, count)
		}
	}
}
