// Package fabric assembles the substrates into a runnable permissioned
// network in the Hyperledger Fabric mold: organizations with their own CAs
// and peers, a shared chaincode registry, per-chaincode endorsement
// policies, a solo ordering service, and a gateway SDK for clients. This is
// the platform on which the paper's STL and SWT networks run (§4).
package fabric

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/chaincode"
	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/peer"
	"repro/internal/wire"
)

var (
	// ErrOrgExists is returned when adding a duplicate organization.
	ErrOrgExists = errors.New("fabric: organization already exists")
	// ErrUnknownOrg is returned for lookups of absent organizations.
	ErrUnknownOrg = errors.New("fabric: unknown organization")
	// ErrNotDeployed is returned when invoking an undeployed chaincode.
	ErrNotDeployed = errors.New("fabric: chaincode not deployed")
	// ErrNoEndorsers is returned when no peer can endorse a proposal.
	ErrNoEndorsers = errors.New("fabric: no endorsing peers available")
	// ErrTxInvalidated is returned when a submitted transaction fails
	// commit-time validation.
	ErrTxInvalidated = errors.New("fabric: transaction invalidated")
)

// Org is one organization of the network: a CA plus its peers.
type Org struct {
	ID    string
	CA    *msp.CA
	Peers []*peer.Peer
}

// Tuning bundles a network's performance knobs: the orderer's batching
// configuration and the peers' committer worker-pool size. The zero value
// is the fully synchronous, serial-committer configuration.
type Tuning struct {
	Orderer          orderer.Config
	CommitterWorkers int
}

// Network is a single-channel permissioned blockchain network.
type Network struct {
	id string

	mu       sync.RWMutex
	orgs     map[string]*Org
	orgOrder []string
	policies map[string]*endorsement.Policy
	verifier *msp.Verifier
	// eras records every verifier the network has had and the chain height
	// it took effect at, so a later catch-up can re-validate each historic
	// block against the verifier of its committing era (verifierAt) instead
	// of the current one — without this, a catch-up after RemoveOrg would
	// re-validate transactions the removed org endorsed against a verifier
	// that no longer trusts its root and flip their verdicts to failed.
	eras []verifierEra
	// committerWorkers is applied to every current and future peer; <= 1
	// means the serial committer.
	committerWorkers int

	registry *chaincode.Registry
	ord      *orderer.Orderer

	// commitMu serializes block delivery against org catch-up; it is
	// always acquired before mu when both are needed.
	commitMu sync.Mutex

	eventMu   sync.Mutex
	eventSubs map[int]*eventSub
	nextSubID int
}

type eventSub struct {
	chaincodeName string
	eventName     string
	ch            chan ledger.ChaincodeEvent
}

// verifierEra is one entry of the network's verifier history: the
// verifier that governed validation of every block committed at height
// fromHeight or later, until the next era begins.
type verifierEra struct {
	fromHeight uint64
	verifier   *msp.Verifier
}

// NewNetwork creates an empty network with the given identifier and orderer
// configuration.
func NewNetwork(id string, ordCfg orderer.Config) *Network {
	n := &Network{
		id:        id,
		orgs:      make(map[string]*Org),
		policies:  make(map[string]*endorsement.Policy),
		registry:  chaincode.NewRegistry(),
		ord:       orderer.New(ordCfg),
		eventSubs: make(map[int]*eventSub),
	}
	// The network is the orderer's sole consumer: it fans blocks out to
	// every peer, then dispatches chaincode events from validated
	// transactions.
	n.ord.Register(orderer.ConsumerFunc(n.commitBlock))
	return n
}

// NewNetworkTuned creates an empty network from a Tuning bundle: the
// orderer configuration plus the committer worker-pool size applied to
// every peer that joins. NewNetworkTuned(id, fabric.Tuning{}) is
// equivalent to NewNetwork(id, orderer.Config{}) — single-transaction
// synchronous blocks, serial committer.
func NewNetworkTuned(id string, t Tuning) *Network {
	n := NewNetwork(id, t.Orderer)
	n.committerWorkers = t.CommitterWorkers
	return n
}

// ID returns the network identifier.
func (n *Network) ID() string { return n.id }

// Orderer exposes the ordering service (for Stop and advanced
// configuration).
func (n *Network) Orderer() *orderer.Orderer { return n.ord }

// SetCommitterWorkers sets the committer worker-pool size on every current
// and future peer of the network. workers <= 1 selects the serial
// committer; larger values enable concurrent in-block validation and
// conflict-aware parallel write application on each peer.
func (n *Network) SetCommitterWorkers(workers int) {
	n.mu.Lock()
	n.committerWorkers = workers
	n.mu.Unlock()
	for _, p := range n.AllPeers() {
		p.SetCommitterWorkers(workers)
	}
}

// AddOrg creates an organization with its CA and the given number of peers.
// Organizations may join a network that has already committed blocks: the
// new peers catch up by replaying the chain from an existing peer before
// they start receiving live blocks (the state-transfer role gossip plays in
// Fabric). Block delivery is quiesced (commitMu) for the duration so no
// block can slip between replay and registration.
func (n *Network) AddOrg(orgID string, peerCount int) (*Org, error) {
	ca, err := msp.NewCA(orgID)
	if err != nil {
		return nil, fmt.Errorf("fabric: create CA for %s: %w", orgID, err)
	}
	org := &Org{ID: orgID, CA: ca}
	n.mu.RLock()
	workers := n.committerWorkers
	n.mu.RUnlock()
	for i := 0; i < peerCount; i++ {
		identity, err := ca.Issue(fmt.Sprintf("%s-peer%d", orgID, i), msp.RolePeer)
		if err != nil {
			return nil, fmt.Errorf("fabric: issue peer identity: %w", err)
		}
		p := peer.New(identity, n.registry, n, n)
		p.SetCommitterWorkers(workers)
		org.Peers = append(org.Peers, p)
	}

	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	if err := n.catchUp(org.Peers); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.orgs[orgID]; exists {
		return nil, fmt.Errorf("%w: %s", ErrOrgExists, orgID)
	}
	n.orgs[orgID] = org
	n.orgOrder = append(n.orgOrder, orgID)
	if err := n.rebuildVerifierLocked(n.chainHeightLocked()); err != nil {
		return nil, err
	}
	return org, nil
}

// RemoveOrg removes an organization from the network: its peers stop
// serving, its identity root leaves the verifier, and endorsement or
// attestation policies naming it can no longer be satisfied locally. The
// chain the removed peers helped build remains committed on the surviving
// peers — which is exactly the scenario proof-carrying commits exist for:
// a proof persisted before the removal still verifies against the source
// configuration the destination recorded, while a fresh proof under the
// shrunk peer set cannot satisfy the old policy.
func (n *Network) RemoveOrg(orgID string) error {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.orgs[orgID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownOrg, orgID)
	}
	// Capture the height before the org leaves: the departing org's peers
	// may be the only remaining block source, and the new era begins at
	// whatever height the chain had reached when the trust set shrank.
	height := n.chainHeightLocked()
	delete(n.orgs, orgID)
	for i, id := range n.orgOrder {
		if id == orgID {
			n.orgOrder = append(n.orgOrder[:i], n.orgOrder[i+1:]...)
			break
		}
	}
	return n.rebuildVerifierLocked(height)
}

// catchUp replays every committed block from an existing peer into fresh
// peers so they join at the current height. Each block is re-validated
// against the verifier of its committing era (verifierAt), not the
// current one: validation is deterministic only relative to a verifier and
// an org set, and the org set may have changed (RemoveOrg) since a block
// committed. Callers hold commitMu (so the chain cannot advance) but not
// mu (verifierAt takes mu's read lock per block).
func (n *Network) catchUp(fresh []*peer.Peer) error {
	n.mu.RLock()
	var source *peer.Peer
	for _, orgID := range n.orgOrder {
		if peers := n.orgs[orgID].Peers; len(peers) > 0 {
			source = peers[0]
			break
		}
	}
	n.mu.RUnlock()
	if source == nil {
		return nil // first organization: nothing to replay
	}
	height := source.Blocks().Height()
	for num := uint64(0); num < height; num++ {
		block, err := source.Blocks().Block(num)
		if err != nil {
			return fmt.Errorf("fabric: catch-up read block %d: %w", num, err)
		}
		v := n.verifierAt(num)
		for _, p := range fresh {
			if err := p.CommitBlockPinned(block, v); err != nil {
				return fmt.Errorf("fabric: catch-up replay block %d: %w", num, err)
			}
		}
	}
	return nil
}

// chainHeightLocked returns the committed chain height as seen by any
// current peer (every peer holds the full chain). Callers hold mu.
func (n *Network) chainHeightLocked() uint64 {
	for _, orgID := range n.orgOrder {
		if peers := n.orgs[orgID].Peers; len(peers) > 0 {
			return peers[0].Blocks().Height()
		}
	}
	return 0
}

// verifierAt returns the verifier that governed validation of block num:
// the latest era whose fromHeight does not exceed num. Eras are appended
// with non-decreasing fromHeight, so the last match wins. Returns nil
// (caller falls back to the current verifier) if no era is recorded.
func (n *Network) verifierAt(num uint64) *msp.Verifier {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var v *msp.Verifier
	for _, era := range n.eras {
		if era.fromHeight <= num {
			v = era.verifier
		}
	}
	return v
}

// rebuildVerifierLocked rebuilds the current verifier from the present
// org set and records it as the era governing blocks committed at
// fromHeight and later. Callers hold mu.
func (n *Network) rebuildVerifierLocked(fromHeight uint64) error {
	roots := make(map[string][]byte, len(n.orgs))
	for id, org := range n.orgs {
		roots[id] = org.CA.RootCertPEM()
	}
	v, err := msp.NewVerifier(roots)
	if err != nil {
		return fmt.Errorf("fabric: rebuild verifier: %w", err)
	}
	n.verifier = v
	n.eras = append(n.eras, verifierEra{fromHeight: fromHeight, verifier: v})
	return nil
}

// Verifier implements peer.VerifierProvider with the network's current
// organization roots.
func (n *Network) Verifier() *msp.Verifier {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.verifier
}

// PolicyFor implements peer.PolicyProvider.
func (n *Network) PolicyFor(chaincodeName string) *endorsement.Policy {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.policies[chaincodeName]
}

// Deploy installs a chaincode on every peer under the given endorsement
// policy expression. Re-deploying an existing name upgrades it.
func (n *Network) Deploy(name string, cc chaincode.Chaincode, policyExpr string) error {
	policy, err := endorsement.Parse(policyExpr)
	if err != nil {
		return fmt.Errorf("fabric: deploy %s: %w", name, err)
	}
	n.mu.Lock()
	n.policies[name] = policy
	n.mu.Unlock()
	n.registry.Register(name, cc)
	return nil
}

// Org returns an organization by ID.
func (n *Network) Org(orgID string) (*Org, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	org, ok := n.orgs[orgID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownOrg, orgID)
	}
	return org, nil
}

// OrgIDs returns organization IDs in creation order.
func (n *Network) OrgIDs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, len(n.orgOrder))
	copy(out, n.orgOrder)
	return out
}

// PeersOf returns the peers of one organization.
func (n *Network) PeersOf(orgID string) ([]*peer.Peer, error) {
	org, err := n.Org(orgID)
	if err != nil {
		return nil, err
	}
	out := make([]*peer.Peer, len(org.Peers))
	copy(out, org.Peers)
	return out, nil
}

// AllPeers returns every peer in the network, grouped by organization
// creation order.
func (n *Network) AllPeers() []*peer.Peer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []*peer.Peer
	for _, orgID := range n.orgOrder {
		out = append(out, n.orgs[orgID].Peers...)
	}
	return out
}

// ExportConfig produces the network's shareable configuration (identity
// roots and topology), the artifact another network records via its
// Configuration Management contract before interoperating (§3.3).
func (n *Network) ExportConfig() *wire.NetworkConfig {
	n.mu.RLock()
	defer n.mu.RUnlock()
	cfg := &wire.NetworkConfig{NetworkID: n.id, Platform: "fabric"}
	for _, orgID := range n.orgOrder {
		org := n.orgs[orgID]
		oc := wire.OrgConfig{OrgID: orgID, RootCertPEM: org.CA.RootCertPEM()}
		for _, p := range org.Peers {
			oc.PeerNames = append(oc.PeerNames, p.Name())
		}
		cfg.Orgs = append(cfg.Orgs, oc)
	}
	return cfg
}

// commitBlock fans an ordered block out to every peer, then dispatches
// chaincode events from transactions that committed as valid. commitMu
// serializes delivery against organization catch-up (AddOrg).
func (n *Network) commitBlock(block *ledger.Block) error {
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	for _, p := range n.AllPeers() {
		if err := p.CommitBlock(block); err != nil {
			return err
		}
	}
	n.dispatchEvents(block)
	return nil
}

func (n *Network) dispatchEvents(block *ledger.Block) {
	n.eventMu.Lock()
	defer n.eventMu.Unlock()
	if len(n.eventSubs) == 0 {
		return
	}
	// One commit timestamp for the whole block: events are ordered by
	// commit, and stamping per-event would invent an ordering inside the
	// block that the ledger does not define.
	committed := uint64(time.Now().UnixNano())
	for _, tx := range block.Transactions {
		if tx.Validation != ledger.Valid || tx.Event == nil {
			continue
		}
		ev := *tx.Event
		ev.UnixNano = committed
		for _, sub := range n.eventSubs {
			if sub.chaincodeName != "" && sub.chaincodeName != ev.Chaincode {
				continue
			}
			if sub.eventName != "" && sub.eventName != ev.Name {
				continue
			}
			select {
			case sub.ch <- ev:
			default: // slow subscriber: drop rather than stall commits
			}
		}
	}
}

// EventSubscription is a live chaincode event feed.
type EventSubscription struct {
	// C receives events from transactions that commit as valid.
	C      <-chan ledger.ChaincodeEvent
	cancel func()
}

// Cancel tears the subscription down.
func (s *EventSubscription) Cancel() { s.cancel() }

// SubscribeEvents returns a feed of committed chaincode events. Empty
// chaincodeName or eventName match everything.
func (n *Network) SubscribeEvents(chaincodeName, eventName string) *EventSubscription {
	n.eventMu.Lock()
	defer n.eventMu.Unlock()
	id := n.nextSubID
	n.nextSubID++
	sub := &eventSub{
		chaincodeName: chaincodeName,
		eventName:     eventName,
		ch:            make(chan ledger.ChaincodeEvent, 64),
	}
	n.eventSubs[id] = sub
	return &EventSubscription{
		C: sub.ch,
		cancel: func() {
			n.eventMu.Lock()
			defer n.eventMu.Unlock()
			delete(n.eventSubs, id)
		},
	}
}

// Gateway returns a client handle bound to an identity, mirroring the
// Fabric gateway SDK applications program against.
func (n *Network) Gateway(identity *msp.Identity) *Gateway {
	return &Gateway{net: n, identity: identity}
}

// Gateway submits transactions and evaluates queries on behalf of one
// client identity.
type Gateway struct {
	net      *Network
	identity *msp.Identity
}

// Identity returns the client identity the gateway is bound to.
func (g *Gateway) Identity() *msp.Identity { return g.identity }

// Network returns the underlying network.
func (g *Gateway) Network() *Network { return g.net }

// newTxID produces a fresh transaction identifier.
func newTxID() (string, error) {
	nonce, err := cryptoutil.NewNonce()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(nonce), nil
}

// Submit runs the full endorse-order-validate-commit pipeline and returns
// the chaincode response. It returns ErrTxInvalidated (wrapped with the
// validation code) if commit-time validation rejects the transaction.
func (g *Gateway) Submit(ccName, function string, args ...[]byte) ([]byte, error) {
	tx, err := g.SubmitTx(ccName, function, args...)
	if err != nil {
		return nil, err
	}
	return tx.Response, nil
}

// SubmitString is Submit with string arguments.
func (g *Gateway) SubmitString(ccName, function string, args ...string) ([]byte, error) {
	return g.Submit(ccName, function, bytesArgs(args)...)
}

// SubmitTx is Submit returning the full committed transaction.
func (g *Gateway) SubmitTx(ccName, function string, args ...[]byte) (*ledger.Transaction, error) {
	policy := g.net.PolicyFor(ccName)
	if policy == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotDeployed, ccName)
	}
	txID, err := newTxID()
	if err != nil {
		return nil, fmt.Errorf("fabric: generate tx id: %w", err)
	}
	inv := chaincode.Invocation{
		TxID:        txID,
		Chaincode:   ccName,
		Function:    function,
		Args:        args,
		CreatorCert: g.identity.CertPEM(),
		Timestamp:   time.Now(),
	}
	endorsers := g.endorsersFor(policy)
	if len(endorsers) == 0 {
		return nil, ErrNoEndorsers
	}
	responses := make([]*peer.ProposalResponse, 0, len(endorsers))
	for _, p := range endorsers {
		resp, err := p.Endorse(inv)
		if err != nil {
			return nil, err
		}
		responses = append(responses, resp)
	}
	tx, err := peer.AssembleTransaction(inv, responses)
	if err != nil {
		return nil, err
	}
	// SubmitWait couples the client to its block's delivery in both
	// orderer modes, so the caller always observes a final state.
	if err := g.net.ord.SubmitWait(tx); err != nil {
		return nil, fmt.Errorf("fabric: order tx: %w", err)
	}
	if tx.Validation != ledger.Valid {
		return tx, fmt.Errorf("%w: %s", ErrTxInvalidated, tx.Validation)
	}
	return tx, nil
}

// Evaluate runs a read-only query against a single peer of the client's
// organization (falling back to any peer) without creating a transaction.
func (g *Gateway) Evaluate(ccName, function string, args ...[]byte) ([]byte, error) {
	txID, err := newTxID()
	if err != nil {
		return nil, fmt.Errorf("fabric: generate query id: %w", err)
	}
	inv := chaincode.Invocation{
		TxID:        txID,
		Chaincode:   ccName,
		Function:    function,
		Args:        args,
		CreatorCert: g.identity.CertPEM(),
		Timestamp:   time.Now(),
		ReadOnly:    true,
	}
	p := g.queryPeer()
	if p == nil {
		return nil, ErrNoEndorsers
	}
	return p.Query(inv)
}

// EvaluateString is Evaluate with string arguments.
func (g *Gateway) EvaluateString(ccName, function string, args ...string) ([]byte, error) {
	return g.Evaluate(ccName, function, bytesArgs(args)...)
}

// endorsersFor selects one peer from each organization the policy
// references. Organizations absent from this network are skipped; the
// commit-time policy check is the final arbiter.
func (g *Gateway) endorsersFor(policy *endorsement.Policy) []*peer.Peer {
	var out []*peer.Peer
	for _, orgID := range policy.Orgs() {
		peers, err := g.net.PeersOf(orgID)
		if err != nil || len(peers) == 0 {
			continue
		}
		out = append(out, peers[0])
	}
	return out
}

func (g *Gateway) queryPeer() *peer.Peer {
	if peers, err := g.net.PeersOf(g.identity.OrgID); err == nil && len(peers) > 0 {
		return peers[0]
	}
	all := g.net.AllPeers()
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

func bytesArgs(args []string) [][]byte {
	out := make([][]byte, len(args))
	for i, a := range args {
		out[i] = []byte(a)
	}
	return out
}
