package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaincode"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/peer"
)

// kvChaincode is a minimal contract: put(k,v), get(k), del(k), emit(name).
var kvChaincode = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	switch stub.Function() {
	case "put":
		if len(args) != 2 {
			return nil, errors.New("put needs key and value")
		}
		return nil, stub.PutState(args[0], []byte(args[1]))
	case "get":
		if len(args) != 1 {
			return nil, errors.New("get needs key")
		}
		return stub.GetState(args[0])
	case "del":
		return nil, stub.DelState(args[0])
	case "emit":
		return nil, stub.SetEvent(args[0], []byte(args[1]))
	default:
		return nil, fmt.Errorf("unknown function %q", stub.Function())
	}
})

func newTestNetwork(t *testing.T) (*Network, *Gateway) {
	t.Helper()
	n := NewNetwork("testnet", orderer.Config{BatchSize: 1})
	if _, err := n.AddOrg("org-a", 2); err != nil {
		t.Fatalf("AddOrg: %v", err)
	}
	if _, err := n.AddOrg("org-b", 1); err != nil {
		t.Fatalf("AddOrg: %v", err)
	}
	if err := n.Deploy("kv", kvChaincode, "AND('org-a','org-b')"); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	orgA, _ := n.Org("org-a")
	client, err := orgA.CA.Issue("client1", msp.RoleClient)
	if err != nil {
		t.Fatalf("Issue client: %v", err)
	}
	return n, n.Gateway(client)
}

func TestSubmitAndEvaluate(t *testing.T) {
	_, gw := newTestNetwork(t)
	if _, err := gw.SubmitString("kv", "put", "color", "blue"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := gw.EvaluateString("kv", "get", "color")
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !bytes.Equal(got, []byte("blue")) {
		t.Fatalf("get = %q", got)
	}
}

func TestCommitReachesAllPeers(t *testing.T) {
	n, gw := newTestNetwork(t)
	if _, err := gw.SubmitString("kv", "put", "k", "v"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for _, p := range n.AllPeers() {
		vv, ok := p.State().Get("kv", "k")
		if !ok || !bytes.Equal(vv.Value, []byte("v")) {
			t.Fatalf("peer %s state: %+v %v", p.Name(), vv, ok)
		}
		if p.Blocks().Height() != 1 {
			t.Fatalf("peer %s height = %d", p.Name(), p.Blocks().Height())
		}
		if err := p.Blocks().VerifyChain(); err != nil {
			t.Fatalf("peer %s chain: %v", p.Name(), err)
		}
	}
}

func TestSubmitUndeployedChaincode(t *testing.T) {
	_, gw := newTestNetwork(t)
	if _, err := gw.SubmitString("ghost", "put", "k", "v"); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("err = %v", err)
	}
}

func TestChaincodeErrorSurfacesAtSubmit(t *testing.T) {
	_, gw := newTestNetwork(t)
	if _, err := gw.SubmitString("kv", "nosuchfunction"); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestDuplicateOrgRejected(t *testing.T) {
	n, _ := newTestNetwork(t)
	if _, err := n.AddOrg("org-a", 1); !errors.Is(err, ErrOrgExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeleteState(t *testing.T) {
	_, gw := newTestNetwork(t)
	_, _ = gw.SubmitString("kv", "put", "k", "v")
	if _, err := gw.SubmitString("kv", "del", "k"); err != nil {
		t.Fatalf("del: %v", err)
	}
	got, err := gw.EvaluateString("kv", "get", "k")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("deleted key returned %q", got)
	}
}

func TestMVCCConflictDetected(t *testing.T) {
	n, gw := newTestNetwork(t)
	_, _ = gw.SubmitString("kv", "put", "k", "v0")

	// Endorse a read-modify-write, then commit a conflicting write before
	// ordering the first transaction. Use batch size > 1 via a second
	// network? Simpler: endorse manually against peers, then interleave.
	policy := n.PolicyFor("kv")
	if policy == nil {
		t.Fatal("no policy")
	}
	orgA, _ := n.Org("org-a")
	client, _ := orgA.CA.Issue("c2", msp.RoleClient)

	inv := chaincode.Invocation{
		TxID:        "tx-conflict",
		Chaincode:   "kv",
		Function:    "put",
		Args:        [][]byte{[]byte("k"), []byte("stale")},
		CreatorCert: client.CertPEM(),
		Timestamp:   time.Now(),
	}
	// Make the simulation read "k" so there is a read set to conflict on.
	readInv := inv
	readInv.Function = "get"
	readInv.Args = [][]byte{[]byte("k")}

	// Build a combined chaincode call that reads then writes via two
	// endorsements is not possible with the kv contract; use a dedicated
	// contract instead.
	// Read through the kv chaincode so the read set records kv's
	// namespace — the namespace the intervening write below lands in.
	if err := n.Deploy("rmw", chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
		cur, err := stub.InvokeChaincode("kv", "get", [][]byte{[]byte("k")})
		if err != nil {
			return nil, err
		}
		return nil, stub.PutState("k", append(cur, '!'))
	}), "AND('org-a','org-b')"); err != nil {
		t.Fatalf("Deploy rmw: %v", err)
	}

	rmwInv := chaincode.Invocation{
		TxID:        "tx-rmw",
		Chaincode:   "rmw",
		Function:    "bump",
		CreatorCert: client.CertPEM(),
		Timestamp:   time.Now(),
	}
	var responses []*peer.ProposalResponse
	for _, orgID := range []string{"org-a", "org-b"} {
		peers, _ := n.PeersOf(orgID)
		resp, err := peers[0].Endorse(rmwInv)
		if err != nil {
			t.Fatalf("Endorse: %v", err)
		}
		responses = append(responses, resp)
	}

	// Intervening write moves the version of "k".
	if _, err := gw.SubmitString("kv", "put", "k", "v1"); err != nil {
		t.Fatalf("intervening put: %v", err)
	}

	// Now order the stale endorsed transaction.
	tx, err := peer.AssembleTransaction(rmwInv, responses)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := n.Orderer().Submit(tx); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if tx.Validation != ledger.MVCCConflict {
		t.Fatalf("validation = %v, want mvcc-conflict", tx.Validation)
	}
	// The stale write must not have been applied.
	got, _ := gw.EvaluateString("kv", "get", "k")
	if !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("state after conflict = %q", got)
	}
}

func TestEndorsementPolicyUnsatisfiedRejected(t *testing.T) {
	n, _ := newTestNetwork(t)
	orgA, _ := n.Org("org-a")
	client, _ := orgA.CA.Issue("c3", msp.RoleClient)

	inv := chaincode.Invocation{
		TxID:        "tx-short",
		Chaincode:   "kv",
		Function:    "put",
		Args:        [][]byte{[]byte("x"), []byte("y")},
		CreatorCert: client.CertPEM(),
		Timestamp:   time.Now(),
	}
	// Endorse with only org-a although the policy demands both orgs.
	peers, _ := n.PeersOf("org-a")
	resp, err := peers[0].Endorse(inv)
	if err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	tx, err := peer.AssembleTransaction(inv, []*peer.ProposalResponse{resp})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := n.Orderer().Submit(tx); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if tx.Validation != ledger.EndorsementFailure {
		t.Fatalf("validation = %v, want endorsement-failure", tx.Validation)
	}
}

func TestForgedEndorsementRejected(t *testing.T) {
	n, _ := newTestNetwork(t)
	orgA, _ := n.Org("org-a")
	client, _ := orgA.CA.Issue("c4", msp.RoleClient)

	inv := chaincode.Invocation{
		TxID:        "tx-forged",
		Chaincode:   "kv",
		Function:    "put",
		Args:        [][]byte{[]byte("x"), []byte("y")},
		CreatorCert: client.CertPEM(),
		Timestamp:   time.Now(),
	}
	var responses []*peer.ProposalResponse
	for _, orgID := range []string{"org-a", "org-b"} {
		peers, _ := n.PeersOf(orgID)
		resp, err := peers[0].Endorse(inv)
		if err != nil {
			t.Fatalf("Endorse: %v", err)
		}
		responses = append(responses, resp)
	}
	tx, err := peer.AssembleTransaction(inv, responses)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	// Tamper with the response after endorsement.
	tx.RWSet.Writes[0].Value = []byte("forged")
	if err := n.Orderer().Submit(tx); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if tx.Validation != ledger.BadSignature {
		t.Fatalf("validation = %v, want bad-signature", tx.Validation)
	}
}

func TestChaincodeEvents(t *testing.T) {
	n, gw := newTestNetwork(t)
	sub := n.SubscribeEvents("kv", "")
	defer sub.Cancel()
	if _, err := gw.SubmitString("kv", "emit", "shipment-created", "po-1001"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	select {
	case ev := <-sub.C:
		if ev.Name != "shipment-created" || !bytes.Equal(ev.Payload, []byte("po-1001")) {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event delivered")
	}
}

func TestEventFilterByName(t *testing.T) {
	n, gw := newTestNetwork(t)
	sub := n.SubscribeEvents("kv", "wanted")
	defer sub.Cancel()
	_, _ = gw.SubmitString("kv", "emit", "other", "x")
	_, _ = gw.SubmitString("kv", "emit", "wanted", "y")
	select {
	case ev := <-sub.C:
		if ev.Name != "wanted" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event delivered")
	}
}

func TestExportConfig(t *testing.T) {
	n, _ := newTestNetwork(t)
	cfg := n.ExportConfig()
	if cfg.NetworkID != "testnet" || cfg.Platform != "fabric" {
		t.Fatalf("config header: %+v", cfg)
	}
	if len(cfg.Orgs) != 2 {
		t.Fatalf("orgs = %d", len(cfg.Orgs))
	}
	if cfg.Orgs[0].OrgID != "org-a" || len(cfg.Orgs[0].PeerNames) != 2 {
		t.Fatalf("org-a config: %+v", cfg.Orgs[0])
	}
	if len(cfg.Orgs[1].RootCertPEM) == 0 {
		t.Fatal("missing root cert")
	}
	// The config must round-trip through the wire format.
	buf := cfg.Marshal()
	if len(buf) == 0 {
		t.Fatal("empty marshal")
	}
}

func TestBatchedOrderingStillCommits(t *testing.T) {
	n := NewNetwork("batched", orderer.Config{BatchSize: 5})
	_, _ = n.AddOrg("solo-org", 1)
	if err := n.Deploy("kv", kvChaincode, "'solo-org'"); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	org, _ := n.Org("solo-org")
	client, _ := org.CA.Issue("c", msp.RoleClient)
	gw := n.Gateway(client)
	// Submit flushes partial batches so callers always see a final state.
	if _, err := gw.SubmitString("kv", "put", "k", "v"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, _ := gw.EvaluateString("kv", "get", "k")
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("get = %q", got)
	}
}

func TestUnknownOrgLookup(t *testing.T) {
	n, _ := newTestNetwork(t)
	if _, err := n.Org("ghost"); !errors.Is(err, ErrUnknownOrg) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.PeersOf("ghost"); !errors.Is(err, ErrUnknownOrg) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkSubmitCommit(b *testing.B) {
	n := NewNetwork("bench", orderer.Config{BatchSize: 1})
	_, _ = n.AddOrg("org-a", 1)
	_, _ = n.AddOrg("org-b", 1)
	_ = n.Deploy("kv", kvChaincode, "AND('org-a','org-b')")
	org, _ := n.Org("org-a")
	client, _ := org.CA.Issue("c", msp.RoleClient)
	gw := n.Gateway(client)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.SubmitString("kv", "put", "k", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	n := NewNetwork("bench", orderer.Config{BatchSize: 1})
	_, _ = n.AddOrg("org-a", 1)
	_ = n.Deploy("kv", kvChaincode, "'org-a'")
	org, _ := n.Org("org-a")
	client, _ := org.CA.Issue("c", msp.RoleClient)
	gw := n.Gateway(client)
	_, _ = gw.SubmitString("kv", "put", "k", "v")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gw.EvaluateString("kv", "get", "k"); err != nil {
			b.Fatal(err)
		}
	}
}
