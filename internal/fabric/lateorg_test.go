package fabric

import (
	"fmt"
	"testing"

	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/orderer"
)

func TestLateOrgJoin(t *testing.T) {
	n := NewNetwork("late", orderer.Config{BatchSize: 1})
	_, _ = n.AddOrg("org-a", 1)
	_ = n.Deploy("kv", kvChaincode, "'org-a'")
	org, _ := n.Org("org-a")
	client, _ := org.CA.Issue("c", msp.RoleClient)
	gw := n.Gateway(client)
	if _, err := gw.SubmitString("kv", "put", "k1", "v1"); err != nil {
		t.Fatalf("first put: %v", err)
	}
	if _, err := n.AddOrg("org-b", 1); err != nil {
		t.Fatalf("late AddOrg: %v", err)
	}
	if _, err := gw.SubmitString("kv", "put", "k2", "v2"); err != nil {
		t.Fatalf("put after late join: %v", err)
	}
}

func TestLateOrgPeerStateSynced(t *testing.T) {
	n := NewNetwork("late2", orderer.Config{BatchSize: 1})
	_, _ = n.AddOrg("org-a", 1)
	_ = n.Deploy("kv", kvChaincode, "'org-a'")
	org, _ := n.Org("org-a")
	client, _ := org.CA.Issue("c", msp.RoleClient)
	gw := n.Gateway(client)
	for i := 0; i < 5; i++ {
		if _, err := gw.SubmitString("kv", "put", "k", "v"); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	newOrg, err := n.AddOrg("org-b", 2)
	if err != nil {
		t.Fatalf("AddOrg: %v", err)
	}
	for _, p := range newOrg.Peers {
		if p.Blocks().Height() != 5 {
			t.Fatalf("new peer height = %d, want 5", p.Blocks().Height())
		}
		if err := p.Blocks().VerifyChain(); err != nil {
			t.Fatalf("new peer chain: %v", err)
		}
		vv, ok := p.State().Get("kv", "k")
		if !ok || string(vv.Value) != "v" {
			t.Fatalf("new peer state = %+v %v", vv, ok)
		}
	}
	// New org participates in subsequent commits.
	if _, err := gw.SubmitString("kv", "put", "k2", "v2"); err != nil {
		t.Fatalf("post-join put: %v", err)
	}
	for _, p := range newOrg.Peers {
		if p.Blocks().Height() != 6 {
			t.Fatalf("post-join height = %d", p.Blocks().Height())
		}
	}
}

func TestCatchUpAfterOrgRemovalKeepsHistoricVerdicts(t *testing.T) {
	// Blocks endorsed by an org that is later removed must replay cleanly
	// when an even-later AddOrg catches a fresh peer up: each block is
	// re-validated against the verifier of its committing era, not the
	// current one (which no longer trusts the removed org's root).
	n := NewNetwork("eras", orderer.Config{BatchSize: 1})
	if _, err := n.AddOrg("org-a", 1); err != nil {
		t.Fatalf("AddOrg a: %v", err)
	}
	if _, err := n.AddOrg("org-b", 1); err != nil {
		t.Fatalf("AddOrg b: %v", err)
	}
	if err := n.Deploy("kv", kvChaincode, "AND('org-a','org-b')"); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	org, _ := n.Org("org-a")
	client, _ := org.CA.Issue("c", msp.RoleClient)
	gw := n.Gateway(client)
	const writes = 3
	for i := 0; i < writes; i++ {
		if _, err := gw.SubmitString("kv", "put", fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := n.RemoveOrg("org-b"); err != nil {
		t.Fatalf("RemoveOrg: %v", err)
	}
	newOrg, err := n.AddOrg("org-c", 1)
	if err != nil {
		t.Fatalf("AddOrg c: %v", err)
	}
	for _, p := range newOrg.Peers {
		if got := p.Blocks().Height(); got != writes {
			t.Fatalf("caught-up height = %d, want %d", got, writes)
		}
		if err := p.Blocks().VerifyChain(); err != nil {
			t.Fatalf("caught-up chain: %v", err)
		}
		// Every historic transaction keeps its Valid verdict even though
		// its org-b endorsement cannot validate under the current verifier.
		for num := uint64(0); num < writes; num++ {
			b, err := p.Blocks().Block(num)
			if err != nil {
				t.Fatalf("block %d: %v", num, err)
			}
			for _, tx := range b.Transactions {
				if tx.Validation != ledger.Valid {
					t.Fatalf("block %d tx %s re-validated as %v", num, tx.ID, tx.Validation)
				}
			}
		}
		for i := 0; i < writes; i++ {
			if vv, ok := p.State().Get("kv", fmt.Sprintf("k%d", i)); !ok || string(vv.Value) != "v" {
				t.Fatalf("caught-up state missing k%d (%+v %v)", i, vv, ok)
			}
		}
	}
}
