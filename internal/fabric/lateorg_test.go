package fabric

import (
	"testing"

	"repro/internal/msp"
	"repro/internal/orderer"
)

func TestLateOrgJoin(t *testing.T) {
	n := NewNetwork("late", orderer.Config{BatchSize: 1})
	_, _ = n.AddOrg("org-a", 1)
	_ = n.Deploy("kv", kvChaincode, "'org-a'")
	org, _ := n.Org("org-a")
	client, _ := org.CA.Issue("c", msp.RoleClient)
	gw := n.Gateway(client)
	if _, err := gw.SubmitString("kv", "put", "k1", "v1"); err != nil {
		t.Fatalf("first put: %v", err)
	}
	if _, err := n.AddOrg("org-b", 1); err != nil {
		t.Fatalf("late AddOrg: %v", err)
	}
	if _, err := gw.SubmitString("kv", "put", "k2", "v2"); err != nil {
		t.Fatalf("put after late join: %v", err)
	}
}

func TestLateOrgPeerStateSynced(t *testing.T) {
	n := NewNetwork("late2", orderer.Config{BatchSize: 1})
	_, _ = n.AddOrg("org-a", 1)
	_ = n.Deploy("kv", kvChaincode, "'org-a'")
	org, _ := n.Org("org-a")
	client, _ := org.CA.Issue("c", msp.RoleClient)
	gw := n.Gateway(client)
	for i := 0; i < 5; i++ {
		if _, err := gw.SubmitString("kv", "put", "k", "v"); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	newOrg, err := n.AddOrg("org-b", 2)
	if err != nil {
		t.Fatalf("AddOrg: %v", err)
	}
	for _, p := range newOrg.Peers {
		if p.Blocks().Height() != 5 {
			t.Fatalf("new peer height = %d, want 5", p.Blocks().Height())
		}
		if err := p.Blocks().VerifyChain(); err != nil {
			t.Fatalf("new peer chain: %v", err)
		}
		vv, ok := p.State().Get("kv", "k")
		if !ok || string(vv.Value) != "v" {
			t.Fatalf("new peer state = %+v %v", vv, ok)
		}
	}
	// New org participates in subsequent commits.
	if _, err := gw.SubmitString("kv", "put", "k2", "v2"); err != nil {
		t.Fatalf("post-join put: %v", err)
	}
	for _, p := range newOrg.Peers {
		if p.Blocks().Height() != 6 {
			t.Fatalf("post-join height = %d", p.Blocks().Height())
		}
	}
}
