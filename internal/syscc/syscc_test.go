package syscc

import (
	"bytes"
	"encoding/json"
	"encoding/pem"
	"strings"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/fabric"
	"repro/internal/msp"
	"repro/internal/orderer"
	"repro/internal/policy"
	"repro/internal/proof"
	"repro/internal/wire"
)

// testBed is a destination-style network with the system contracts deployed,
// plus a foreign "source" network's CAs for forging configurations.
type testBed struct {
	net       *fabric.Network
	admin     *fabric.Gateway
	sourceCfg *wire.NetworkConfig
	sellerCA  *msp.CA
	carrierCA *msp.CA
}

func newTestBed(t *testing.T) *testBed {
	t.Helper()
	n := fabric.NewNetwork("we-trade", orderer.Config{BatchSize: 1})
	if _, err := n.AddOrg("buyer-bank-org", 1); err != nil {
		t.Fatalf("AddOrg: %v", err)
	}
	if _, err := n.AddOrg("seller-bank-org", 1); err != nil {
		t.Fatalf("AddOrg: %v", err)
	}
	sysPolicy := "OR('buyer-bank-org','seller-bank-org')"
	if err := n.Deploy(ECCName, &ECC{}, sysPolicy); err != nil {
		t.Fatalf("Deploy ECC: %v", err)
	}
	if err := n.Deploy(CMDACName, &CMDAC{}, sysPolicy); err != nil {
		t.Fatalf("Deploy CMDAC: %v", err)
	}
	org, _ := n.Org("buyer-bank-org")
	admin, err := org.CA.Issue("admin", msp.RoleAdmin)
	if err != nil {
		t.Fatalf("Issue admin: %v", err)
	}

	// Fabricate a source network config ("tradelens") with two orgs.
	sellerCA, _ := msp.NewCA("seller-org")
	carrierCA, _ := msp.NewCA("carrier-org")
	cfg := &wire.NetworkConfig{
		NetworkID: "tradelens",
		Platform:  "fabric",
		Orgs: []wire.OrgConfig{
			{OrgID: "seller-org", RootCertPEM: sellerCA.RootCertPEM(), PeerNames: []string{"seller-org-peer0"}},
			{OrgID: "carrier-org", RootCertPEM: carrierCA.RootCertPEM(), PeerNames: []string{"carrier-org-peer0"}},
		},
	}
	return &testBed{
		net:       n,
		admin:     n.Gateway(admin),
		sourceCfg: cfg,
		sellerCA:  sellerCA,
		carrierCA: carrierCA,
	}
}

func (tb *testBed) recordConfig(t *testing.T) {
	t.Helper()
	if _, err := tb.admin.Submit(CMDACName, CMDACSetNetworkConfig, tb.sourceCfg.Marshal()); err != nil {
		t.Fatalf("SetNetworkConfig: %v", err)
	}
}

func (tb *testBed) recordPolicy(t *testing.T, vp policy.VerificationPolicy) {
	t.Helper()
	data, err := vp.Marshal()
	if err != nil {
		t.Fatalf("marshal policy: %v", err)
	}
	if _, err := tb.admin.Submit(CMDACName, CMDACSetVerificationPolicy, data); err != nil {
		t.Fatalf("SetVerificationPolicy: %v", err)
	}
}

func TestCMDACConfigRoundTrip(t *testing.T) {
	tb := newTestBed(t)
	tb.recordConfig(t)
	got, err := tb.admin.EvaluateString(CMDACName, CMDACGetNetworkConfig, "tradelens")
	if err != nil {
		t.Fatalf("GetNetworkConfig: %v", err)
	}
	cfg, err := wire.UnmarshalNetworkConfig(got)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if cfg.NetworkID != "tradelens" || len(cfg.Orgs) != 2 {
		t.Fatalf("config = %+v", cfg)
	}
}

func TestCMDACGetMissingConfig(t *testing.T) {
	tb := newTestBed(t)
	if _, err := tb.admin.EvaluateString(CMDACName, CMDACGetNetworkConfig, "ghost"); err == nil {
		t.Fatal("missing config returned")
	}
}

func TestCMDACRejectsBadConfig(t *testing.T) {
	tb := newTestBed(t)
	empty := &wire.NetworkConfig{NetworkID: "x"}
	if _, err := tb.admin.Submit(CMDACName, CMDACSetNetworkConfig, empty.Marshal()); err == nil {
		t.Fatal("config without orgs accepted")
	}
	if _, err := tb.admin.Submit(CMDACName, CMDACSetNetworkConfig, []byte{0xFF, 0xFF}); err == nil {
		t.Fatal("garbage config accepted")
	}
}

func TestCMDACListNetworks(t *testing.T) {
	tb := newTestBed(t)
	tb.recordConfig(t)
	got, err := tb.admin.EvaluateString(CMDACName, CMDACListNetworks)
	if err != nil {
		t.Fatalf("ListNetworks: %v", err)
	}
	var ids []string
	if err := json.Unmarshal(got, &ids); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(ids) != 1 || ids[0] != "tradelens" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestCMDACVerificationPolicyLookup(t *testing.T) {
	tb := newTestBed(t)
	tb.recordPolicy(t, policy.VerificationPolicy{Network: "tradelens", Expr: "'seller-org'"})
	tb.recordPolicy(t, policy.VerificationPolicy{
		Network: "tradelens", Chaincode: "TradeLensCC",
		Expr: "AND('seller-org','carrier-org')",
	})

	// Chaincode-specific lookup.
	got, err := tb.admin.EvaluateString(CMDACName, CMDACGetVerificationPolicy, "tradelens", "TradeLensCC")
	if err != nil {
		t.Fatalf("GetVerificationPolicy: %v", err)
	}
	vp, err := policy.UnmarshalVerificationPolicy(got)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !strings.Contains(vp.Expr, "AND") {
		t.Fatalf("specific policy = %+v", vp)
	}

	// Fallback to the network default for other chaincodes.
	got, err = tb.admin.EvaluateString(CMDACName, CMDACGetVerificationPolicy, "tradelens", "OtherCC")
	if err != nil {
		t.Fatalf("GetVerificationPolicy fallback: %v", err)
	}
	vp, _ = policy.UnmarshalVerificationPolicy(got)
	if vp.Expr != "'seller-org'" {
		t.Fatalf("fallback policy = %+v", vp)
	}

	// No policy at all for unknown networks.
	if _, err := tb.admin.EvaluateString(CMDACName, CMDACGetVerificationPolicy, "ghost", "cc"); err == nil {
		t.Fatal("missing policy returned")
	}
}

func TestCMDACRejectsInvalidPolicy(t *testing.T) {
	tb := newTestBed(t)
	bad, _ := json.Marshal(map[string]string{"network": "tl", "expr": "AND("})
	if _, err := tb.admin.Submit(CMDACName, CMDACSetVerificationPolicy, bad); err == nil {
		t.Fatal("unparseable policy accepted")
	}
}

func TestECCRuleLifecycle(t *testing.T) {
	tb := newTestBed(t)
	rule := policy.AccessRule{Network: "we-trade", Org: "seller-org", Chaincode: "TradeLensCC", Function: "GetBillOfLading"}
	ruleJSON, _ := rule.Marshal()
	if _, err := tb.admin.Submit(ECCName, ECCAddRule, ruleJSON); err != nil {
		t.Fatalf("AddAccessRule: %v", err)
	}

	got, err := tb.admin.EvaluateString(ECCName, ECCCheckAccess, "we-trade", "seller-org", "TradeLensCC", "GetBillOfLading")
	if err != nil {
		t.Fatalf("CheckAccess: %v", err)
	}
	if string(got) != "true" {
		t.Fatalf("CheckAccess = %q", got)
	}
	got, _ = tb.admin.EvaluateString(ECCName, ECCCheckAccess, "we-trade", "seller-org", "TradeLensCC", "GetShipment")
	if string(got) != "false" {
		t.Fatalf("CheckAccess other fn = %q", got)
	}

	list, err := tb.admin.EvaluateString(ECCName, ECCListRules)
	if err != nil {
		t.Fatalf("GetAccessRules: %v", err)
	}
	var rules []policy.AccessRule
	if err := json.Unmarshal(list, &rules); err != nil {
		t.Fatalf("unmarshal rules: %v", err)
	}
	if len(rules) != 1 || rules[0] != rule {
		t.Fatalf("rules = %+v", rules)
	}

	if _, err := tb.admin.Submit(ECCName, ECCRemoveRule, ruleJSON); err != nil {
		t.Fatalf("RemoveAccessRule: %v", err)
	}
	got, _ = tb.admin.EvaluateString(ECCName, ECCCheckAccess, "we-trade", "seller-org", "TradeLensCC", "GetBillOfLading")
	if string(got) != "true" && string(got) != "false" {
		t.Fatalf("CheckAccess = %q", got)
	}
	if string(got) != "false" {
		t.Fatal("removed rule still grants access")
	}
	if _, err := tb.admin.Submit(ECCName, ECCRemoveRule, ruleJSON); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestECCAuthorize(t *testing.T) {
	tb := newTestBed(t)
	tb.recordConfig(t)
	rule := policy.AccessRule{Network: "tradelens", Org: "seller-org", Chaincode: "SomeCC", Function: "ReadDoc"}
	ruleJSON, _ := rule.Marshal()
	if _, err := tb.admin.Submit(ECCName, ECCAddRule, ruleJSON); err != nil {
		t.Fatalf("AddAccessRule: %v", err)
	}

	requester, _ := tb.sellerCA.Issue("remote-client", msp.RoleClient)
	org, err := tb.admin.Evaluate(ECCName, ECCAuthorize,
		[]byte("tradelens"), requester.CertPEM(), []byte("SomeCC"), []byte("ReadDoc"))
	if err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if string(org) != "seller-org" {
		t.Fatalf("authorized org = %q", org)
	}

	// Carrier org has no rule.
	carrierClient, _ := tb.carrierCA.Issue("other-client", msp.RoleClient)
	if _, err := tb.admin.Evaluate(ECCName, ECCAuthorize,
		[]byte("tradelens"), carrierClient.CertPEM(), []byte("SomeCC"), []byte("ReadDoc")); err == nil {
		t.Fatal("unauthorized org authorized")
	}

	// A certificate from an unrecorded CA must be rejected even if it
	// claims a permitted org.
	rogueCA, _ := msp.NewCA("seller-org")
	rogue, _ := rogueCA.Issue("imposter", msp.RoleClient)
	if _, err := tb.admin.Evaluate(ECCName, ECCAuthorize,
		[]byte("tradelens"), rogue.CertPEM(), []byte("SomeCC"), []byte("ReadDoc")); err == nil {
		t.Fatal("imposter certificate authorized")
	}
}

func TestECCAuthorizeWithoutConfig(t *testing.T) {
	tb := newTestBed(t)
	requester, _ := tb.sellerCA.Issue("remote-client", msp.RoleClient)
	if _, err := tb.admin.Evaluate(ECCName, ECCAuthorize,
		[]byte("tradelens"), requester.CertPEM(), []byte("cc"), []byte("fn")); err == nil {
		t.Fatal("authorize without recorded config succeeded")
	}
}

func TestECCEncryptForRequester(t *testing.T) {
	tb := newTestBed(t)
	clientKey, _ := cryptoutil.GenerateKey()
	cert, err := tb.sellerCA.IssueForKey("swt-sc", msp.RoleClient, &clientKey.PublicKey)
	if err != nil {
		t.Fatalf("IssueForKey: %v", err)
	}
	certPEM := pemOf(cert.Raw)
	plaintext := []byte("the B/L document")
	ct, err := tb.admin.Evaluate(ECCName, ECCEncrypt, certPEM, plaintext)
	if err != nil {
		t.Fatalf("EncryptForRequester: %v", err)
	}
	got, err := cryptoutil.Decrypt(clientKey, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatalf("round-trip = %q", got)
	}
}

func TestUnknownFunctions(t *testing.T) {
	tb := newTestBed(t)
	if _, err := tb.admin.EvaluateString(ECCName, "Bogus"); err == nil {
		t.Fatal("unknown ECC function accepted")
	}
	if _, err := tb.admin.EvaluateString(CMDACName, "Bogus"); err == nil {
		t.Fatal("unknown CMDAC function accepted")
	}
}

// buildBundleFor constructs a valid proof bundle attested by the given
// identities for query GetBillOfLading(po-1001) against tradelens.
func buildBundleFor(t *testing.T, result []byte, nonce []byte, attestors ...*msp.Identity) []byte {
	t.Helper()
	clientKey, _ := cryptoutil.GenerateKey()
	qd := proof.QueryDigest("tradelens", "default", "TradeLensCC", "GetBillOfLading",
		[][]byte{[]byte("po-1001")}, nonce)
	encResult, err := proof.EncryptResult(&clientKey.PublicKey, result)
	if err != nil {
		t.Fatalf("EncryptResult: %v", err)
	}
	resp := &wire.QueryResponse{EncryptedResult: encResult}
	for _, at := range attestors {
		att, err := proof.BuildAttestationPinned(at, "tradelens", qd, nil, result, nonce, &clientKey.PublicKey, time.Now())
		if err != nil {
			t.Fatalf("BuildAttestation: %v", err)
		}
		resp.Attestations = append(resp.Attestations, att)
	}
	q := &wire.Query{
		TargetNetwork: "tradelens", Ledger: "default", Contract: "TradeLensCC",
		Function: "GetBillOfLading", Args: [][]byte{[]byte("po-1001")}, Nonce: nonce,
	}
	bundle, err := proof.OpenResponse(clientKey, q, resp)
	if err != nil {
		t.Fatalf("OpenResponse: %v", err)
	}
	return bundle.Marshal()
}

func TestCMDACValidateProofAcceptsValid(t *testing.T) {
	tb := newTestBed(t)
	tb.recordConfig(t)
	tb.recordPolicy(t, policy.VerificationPolicy{
		Network: "tradelens", Expr: "AND('seller-org.peer','carrier-org.peer')",
	})
	sellerPeer, _ := tb.sellerCA.Issue("seller-org-peer0", msp.RolePeer)
	carrierPeer, _ := tb.carrierCA.Issue("carrier-org-peer0", msp.RolePeer)
	nonce, _ := cryptoutil.NewNonce()
	bundleBytes := buildBundleFor(t, []byte("B/L-77"), nonce, sellerPeer, carrierPeer)

	got, err := tb.admin.Submit(CMDACName, CMDACValidateProof,
		[]byte("tradelens"), []byte("default"), []byte("TradeLensCC"), []byte("GetBillOfLading"),
		bundleBytes, []byte("po-1001"))
	if err != nil {
		t.Fatalf("ValidateProof: %v", err)
	}
	if !bytes.Equal(got, []byte("B/L-77")) {
		t.Fatalf("verified result = %q", got)
	}
}

func TestCMDACValidateProofRejectsInsufficientAttestors(t *testing.T) {
	tb := newTestBed(t)
	tb.recordConfig(t)
	tb.recordPolicy(t, policy.VerificationPolicy{
		Network: "tradelens", Expr: "AND('seller-org.peer','carrier-org.peer')",
	})
	sellerPeer, _ := tb.sellerCA.Issue("seller-org-peer0", msp.RolePeer)
	nonce, _ := cryptoutil.NewNonce()
	bundleBytes := buildBundleFor(t, []byte("B/L-77"), nonce, sellerPeer)

	if _, err := tb.admin.Submit(CMDACName, CMDACValidateProof,
		[]byte("tradelens"), []byte("default"), []byte("TradeLensCC"), []byte("GetBillOfLading"),
		bundleBytes, []byte("po-1001")); err == nil {
		t.Fatal("single-org proof accepted against two-org policy")
	}
}

func TestCMDACValidateProofRejectsWrongArgs(t *testing.T) {
	tb := newTestBed(t)
	tb.recordConfig(t)
	tb.recordPolicy(t, policy.VerificationPolicy{Network: "tradelens", Expr: "'seller-org.peer'"})
	sellerPeer, _ := tb.sellerCA.Issue("seller-org-peer0", msp.RolePeer)
	nonce, _ := cryptoutil.NewNonce()
	bundleBytes := buildBundleFor(t, []byte("B/L-77"), nonce, sellerPeer)

	// The proof binds po-1001; claiming it answers po-2002 must fail.
	if _, err := tb.admin.Submit(CMDACName, CMDACValidateProof,
		[]byte("tradelens"), []byte("default"), []byte("TradeLensCC"), []byte("GetBillOfLading"),
		bundleBytes, []byte("po-2002")); err == nil {
		t.Fatal("proof accepted for a different query")
	}
}

func TestCMDACValidateProofReplayRejected(t *testing.T) {
	tb := newTestBed(t)
	tb.recordConfig(t)
	tb.recordPolicy(t, policy.VerificationPolicy{Network: "tradelens", Expr: "'seller-org.peer'"})
	sellerPeer, _ := tb.sellerCA.Issue("seller-org-peer0", msp.RolePeer)
	nonce, _ := cryptoutil.NewNonce()
	bundleBytes := buildBundleFor(t, []byte("B/L-77"), nonce, sellerPeer)

	submit := func() error {
		_, err := tb.admin.Submit(CMDACName, CMDACValidateProof,
			[]byte("tradelens"), []byte("default"), []byte("TradeLensCC"), []byte("GetBillOfLading"),
			bundleBytes, []byte("po-1001"))
		return err
	}
	if err := submit(); err != nil {
		t.Fatalf("first ValidateProof: %v", err)
	}
	if err := submit(); err == nil {
		t.Fatal("replayed proof accepted")
	} else if !strings.Contains(err.Error(), "replay") {
		t.Fatalf("unexpected replay error: %v", err)
	}
}

func pemOf(der []byte) []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
}
