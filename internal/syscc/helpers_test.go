package syscc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/chaincode"
	"repro/internal/msp"
	"repro/internal/policy"
	"repro/internal/statedb"
	"repro/internal/wire"
)

// helperEnv builds a registry holding the ECC + CMDAC plus a probe
// chaincode that reports the AuthorizeRelayRequest outcome, simulated
// directly against a state store.
func helperEnv(t *testing.T) (*chaincode.Registry, *statedb.Store, *msp.CA) {
	t.Helper()
	reg := chaincode.NewRegistry()
	reg.Register(ECCName, &ECC{})
	reg.Register(CMDACName, &CMDAC{})
	reg.Register("probe", chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
		org, err := AuthorizeRelayRequest(stub, "probe")
		if err != nil {
			return nil, err
		}
		return []byte(org), nil
	}))
	state := statedb.NewStore()

	// Record the foreign config + rule directly in state, as committed
	// governance transactions would.
	foreignCA, err := msp.NewCA("remote-org")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	cfg := &wire.NetworkConfig{
		NetworkID: "remote-net",
		Platform:  "fabric",
		Orgs:      []wire.OrgConfig{{OrgID: "remote-org", RootCertPEM: foreignCA.RootCertPEM()}},
	}
	cfgKey, _ := statedb.CompositeKey(cmdacConfigKeyType, "remote-net")
	rule := policy.AccessRule{Network: "remote-net", Org: "remote-org", Chaincode: "probe", Function: "read"}
	ruleJSON, _ := rule.Marshal()
	rk, _ := ruleKey(rule)
	state.ApplyWrites([]statedb.Write{
		{Namespace: CMDACName, Key: cfgKey, Value: cfg.Marshal()},
		{Namespace: ECCName, Key: rk, Value: ruleJSON},
	}, statedb.Version{})
	return reg, state, foreignCA
}

func probeInv(fn string, transient map[string][]byte, creator []byte) chaincode.Invocation {
	return chaincode.Invocation{
		TxID: "tx", Chaincode: "probe", Function: fn,
		CreatorCert: creator, Transient: transient, Timestamp: time.Unix(0, 0),
	}
}

func TestIsRelayQueryAndLocalPassThrough(t *testing.T) {
	reg, state, _ := helperEnv(t)
	// No transient: local invocation, authorization is skipped, empty org.
	res, err := chaincode.Simulate(reg, state, probeInv("read", nil, []byte("whatever")))
	if err != nil {
		t.Fatalf("local probe: %v", err)
	}
	if len(res.Response) != 0 {
		t.Fatalf("local probe returned org %q", res.Response)
	}
}

func TestAuthorizeRelayRequestHappyPath(t *testing.T) {
	reg, state, foreignCA := helperEnv(t)
	client, err := foreignCA.Issue("remote-client", msp.RoleClient)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	transient := map[string][]byte{
		TransientInteropFlag:       []byte("1"),
		TransientRequestingNetwork: []byte("remote-net"),
	}
	res, err := chaincode.Simulate(reg, state, probeInv("read", transient, client.CertPEM()))
	if err != nil {
		t.Fatalf("relayed probe: %v", err)
	}
	if !bytes.Equal(res.Response, []byte("remote-org")) {
		t.Fatalf("authorized org = %q", res.Response)
	}
}

func TestAuthorizeRelayRequestMissingNetwork(t *testing.T) {
	reg, state, foreignCA := helperEnv(t)
	client, _ := foreignCA.Issue("remote-client", msp.RoleClient)
	transient := map[string][]byte{TransientInteropFlag: []byte("1")}
	if _, err := chaincode.Simulate(reg, state, probeInv("read", transient, client.CertPEM())); err == nil {
		t.Fatal("relay query without requesting network authorized")
	}
}

func TestAuthorizeRelayRequestWrongFunction(t *testing.T) {
	reg, state, foreignCA := helperEnv(t)
	client, _ := foreignCA.Issue("remote-client", msp.RoleClient)
	transient := map[string][]byte{
		TransientInteropFlag:       []byte("1"),
		TransientRequestingNetwork: []byte("remote-net"),
	}
	// The recorded rule covers "read" only.
	if _, err := chaincode.Simulate(reg, state, probeInv("write", transient, client.CertPEM())); err == nil {
		t.Fatal("unpermitted function authorized")
	}
}

func TestValidateProofArgsLayout(t *testing.T) {
	args := ValidateProofArgs("net", "ledger", "cc", "fn", []byte("bundle"), []byte("a1"), []byte("a2"))
	want := [][]byte{
		[]byte("net"), []byte("ledger"), []byte("cc"), []byte("fn"),
		[]byte("bundle"), []byte("a1"), []byte("a2"),
	}
	if len(args) != len(want) {
		t.Fatalf("args = %d", len(args))
	}
	for i := range want {
		if !bytes.Equal(args[i], want[i]) {
			t.Fatalf("args[%d] = %q", i, args[i])
		}
	}
}
