package syscc

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/chaincode"
	"repro/internal/policy"
	"repro/internal/proof"
	"repro/internal/statedb"
	"repro/internal/wire"
)

// CMDAC function names.
const (
	CMDACSetNetworkConfig      = "SetNetworkConfig"
	CMDACGetNetworkConfig      = "GetNetworkConfig"
	CMDACListNetworks          = "ListNetworks"
	CMDACSetVerificationPolicy = "SetVerificationPolicy"
	CMDACGetVerificationPolicy = "GetVerificationPolicy"
	CMDACValidateProof         = "ValidateProof"

	cmdacConfigKeyType = "cmdac-config"
	cmdacPolicyKeyType = "cmdac-policy"
	cmdacNonceKeyType  = "cmdac-nonce"
)

// CMDAC is the combined Configuration Management & Data Acceptance
// chaincode.
type CMDAC struct{}

var _ chaincode.Chaincode = (*CMDAC)(nil)

// Invoke dispatches CMDAC functions.
func (c *CMDAC) Invoke(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case CMDACSetNetworkConfig:
		return c.setNetworkConfig(stub)
	case CMDACGetNetworkConfig:
		return c.getNetworkConfig(stub)
	case CMDACListNetworks:
		return c.listNetworks(stub)
	case CMDACSetVerificationPolicy:
		return c.setVerificationPolicy(stub)
	case CMDACGetVerificationPolicy:
		return c.getVerificationPolicy(stub)
	case CMDACValidateProof:
		return c.validateProof(stub)
	default:
		return nil, fmt.Errorf("%w: cmdac.%s", ErrUnknownFunction, stub.Function())
	}
}

// setNetworkConfig records a foreign network's identity and topology
// configuration: args = [configBytes] (wire.NetworkConfig).
func (c *CMDAC) setNetworkConfig(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: SetNetworkConfig expects 1 arg", ErrBadArgs)
	}
	cfg, err := wire.UnmarshalNetworkConfig(args[0])
	if err != nil {
		return nil, fmt.Errorf("syscc: network config: %w", err)
	}
	if cfg.NetworkID == "" {
		return nil, fmt.Errorf("%w: network config without ID", ErrBadArgs)
	}
	if len(cfg.Orgs) == 0 {
		return nil, fmt.Errorf("%w: network config without orgs", ErrBadArgs)
	}
	key, err := statedb.CompositeKey(cmdacConfigKeyType, cfg.NetworkID)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(key, args[0]); err != nil {
		return nil, err
	}
	return []byte(cfg.NetworkID), nil
}

// getNetworkConfig returns a recorded configuration: args = [networkID].
func (c *CMDAC) getNetworkConfig(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: GetNetworkConfig expects 1 arg", ErrBadArgs)
	}
	key, err := statedb.CompositeKey(cmdacConfigKeyType, args[0])
	if err != nil {
		return nil, err
	}
	cfg, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	if cfg == nil {
		return nil, fmt.Errorf("syscc: no recorded configuration for network %q", args[0])
	}
	return cfg, nil
}

// listNetworks returns the IDs of all recorded foreign networks as JSON.
func (c *CMDAC) listNetworks(stub chaincode.Stub) ([]byte, error) {
	start, end, err := statedb.CompositeRange(cmdacConfigKeyType)
	if err != nil {
		return nil, err
	}
	kvs, err := stub.GetStateRange(start, end)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(kvs))
	for _, kv := range kvs {
		cfg, err := wire.UnmarshalNetworkConfig(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("syscc: corrupt config at %q: %w", kv.Key, err)
		}
		ids = append(ids, cfg.NetworkID)
	}
	return json.Marshal(ids)
}

// setVerificationPolicy records the acceptance criteria for one source
// network (optionally scoped to a chaincode): args = [policyJSON].
func (c *CMDAC) setVerificationPolicy(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: SetVerificationPolicy expects 1 arg", ErrBadArgs)
	}
	vp, err := policyFromJSON(args[0])
	if err != nil {
		return nil, err
	}
	key, err := statedb.CompositeKey(cmdacPolicyKeyType, vp.Network, vp.Chaincode)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(key, args[0]); err != nil {
		return nil, err
	}
	return []byte(vp.Expr), nil
}

// getVerificationPolicy returns the policy for (network, chaincode),
// falling back to the network default: args = [networkID, chaincodeName].
func (c *CMDAC) getVerificationPolicy(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 2 {
		return nil, fmt.Errorf("%w: GetVerificationPolicy expects 2 args", ErrBadArgs)
	}
	data, err := lookupPolicy(stub, args[0], args[1])
	if err != nil {
		return nil, err
	}
	return data, nil
}

func lookupPolicy(stub chaincode.Stub, networkID, chaincodeName string) ([]byte, error) {
	// Chaincode-specific policy first, then the network-wide default.
	for _, scope := range []string{chaincodeName, ""} {
		key, err := statedb.CompositeKey(cmdacPolicyKeyType, networkID, scope)
		if err != nil {
			return nil, err
		}
		data, err := stub.GetState(key)
		if err != nil {
			return nil, err
		}
		if data != nil {
			return data, nil
		}
	}
	return nil, fmt.Errorf("syscc: no verification policy for network %q", networkID)
}

// validateProof is the Data Acceptance check (Fig. 2 step 10). Args =
// [sourceNetwork, ledger, contract, function, bundleBytes, queryArgs...].
// It recomputes the expected query digest from the declared query, loads
// the recorded source configuration and verification policy, verifies every
// attestation, enforces nonce freshness, and returns the verified result.
func (c *CMDAC) validateProof(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) < 5 {
		return nil, fmt.Errorf("%w: ValidateProof expects at least 5 args", ErrBadArgs)
	}
	sourceNetwork := string(args[0])
	ledgerName := string(args[1])
	contract := string(args[2])
	function := string(args[3])
	bundle, err := proof.UnmarshalBundle(args[4])
	if err != nil {
		return nil, fmt.Errorf("syscc: proof bundle: %w", err)
	}
	queryArgs := args[5:]

	if bundle.SourceNetwork != sourceNetwork {
		return nil, fmt.Errorf("syscc: bundle names source %q, expected %q",
			bundle.SourceNetwork, sourceNetwork)
	}

	cfgKey, err := statedb.CompositeKey(cmdacConfigKeyType, sourceNetwork)
	if err != nil {
		return nil, err
	}
	cfgBytes, err := stub.GetState(cfgKey)
	if err != nil {
		return nil, err
	}
	if cfgBytes == nil {
		return nil, fmt.Errorf("syscc: no recorded configuration for network %q", sourceNetwork)
	}
	verifier, err := verifierFromConfig(cfgBytes)
	if err != nil {
		return nil, err
	}

	policyJSON, err := lookupPolicy(stub, sourceNetwork, contract)
	if err != nil {
		return nil, err
	}
	vp, err := policyFromJSON(policyJSON)
	if err != nil {
		return nil, err
	}
	compiled, err := vp.Compile()
	if err != nil {
		return nil, err
	}

	expectedDigest := proof.QueryDigest(sourceNetwork, ledgerName, contract, function, queryArgs, bundle.Nonce)
	// The pin check binds the bundle to the policy recorded *here*: a proof
	// built under some other policy expression is refused even when its
	// attestor set would incidentally satisfy the recorded one.
	if err := proof.Verify(bundle, verifier, compiled, expectedDigest, proof.PolicyDigest(vp.Expr)); err != nil {
		return nil, err
	}

	// Replay protection: the client nonce is recorded on the destination
	// ledger; a second transaction presenting the same nonce fails here.
	nonceKey, err := statedb.CompositeKey(cmdacNonceKeyType, hex.EncodeToString(bundle.Nonce))
	if err != nil {
		return nil, err
	}
	seen, err := stub.GetState(nonceKey)
	if err != nil {
		return nil, err
	}
	if seen != nil {
		return nil, fmt.Errorf("syscc: replay detected: nonce already used in tx %s", seen)
	}
	if err := stub.PutState(nonceKey, []byte(stub.TxID())); err != nil {
		return nil, err
	}
	return bundle.Result, nil
}

func policyFromJSON(data []byte) (policy.VerificationPolicy, error) {
	vp, err := policy.UnmarshalVerificationPolicy(data)
	if err != nil {
		return policy.VerificationPolicy{}, err
	}
	if err := vp.Validate(); err != nil {
		return policy.VerificationPolicy{}, err
	}
	return vp, nil
}
