package syscc

import (
	"fmt"

	"repro/internal/chaincode"
)

// IsRelayQuery reports whether the current invocation arrived through a
// relay as a cross-network query.
func IsRelayQuery(stub chaincode.Stub) bool {
	return stub.GetTransient(TransientInteropFlag) != nil
}

// AuthorizeRelayRequest is the source-side adaptation helper (§5 "ease of
// adaptation"): a chaincode function that exposes data cross-network calls
// this once at its top. For relayed invocations it asks the ECC to
// authenticate the requester against the recorded foreign-network
// configuration and to check the access rules; local invocations pass
// through untouched. It returns the authorized foreign organization ID, or
// "" for local calls.
func AuthorizeRelayRequest(stub chaincode.Stub, chaincodeName string) (string, error) {
	if !IsRelayQuery(stub) {
		return "", nil
	}
	requestingNet := stub.GetTransient(TransientRequestingNetwork)
	if len(requestingNet) == 0 {
		return "", fmt.Errorf("%w: relay query without requesting network", ErrAccessDenied)
	}
	org, err := stub.InvokeChaincode(ECCName, ECCAuthorize, [][]byte{
		requestingNet,
		stub.CreatorCert(),
		[]byte(chaincodeName),
		[]byte(stub.Function()),
	})
	if err != nil {
		return "", err
	}
	return string(org), nil
}

// ValidateProofArgs assembles the argument list for a CMDAC ValidateProof
// invocation. Destination chaincode uses it as:
//
//	result, err := stub.InvokeChaincode(syscc.CMDACName, syscc.CMDACValidateProof,
//	    syscc.ValidateProofArgs("tradelens", "default", "TradeLensCC",
//	        "GetBillOfLading", bundleBytes, []byte(poRef)))
func ValidateProofArgs(sourceNetwork, ledgerName, contract, function string, bundleBytes []byte, queryArgs ...[]byte) [][]byte {
	args := make([][]byte, 0, 5+len(queryArgs))
	args = append(args, []byte(sourceNetwork), []byte(ledgerName), []byte(contract), []byte(function), bundleBytes)
	args = append(args, queryArgs...)
	return args
}
