// Package syscc implements the paper's system contracts (§3.2): the
// Exposure Control Chaincode (ECC), which enforces a source network's
// access-control rules over incoming cross-network queries and encrypts
// responses to the requester, and the Configuration Management & Data
// Acceptance Chaincode (CMDAC), which records foreign network
// configurations and verification policies and validates incoming proofs.
// Both are ordinary chaincodes: rule and configuration changes are
// transactions subject to the network's own consensus, which is what makes
// exposure and acceptance decisions consensual.
package syscc

import (
	"crypto/ecdsa"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/chaincode"
	"repro/internal/cryptoutil"
	"repro/internal/msp"
	"repro/internal/policy"
	"repro/internal/statedb"
	"repro/internal/wire"
)

// Deployment names for the system contracts.
const (
	// ECCName is the chaincode name of the Exposure Control contract.
	ECCName = "ecc"
	// CMDACName is the chaincode name of the combined Configuration
	// Management & Data Acceptance contract (§4.3: combined for runtime
	// efficiency, since proof verification depends on recorded foreign
	// configurations).
	CMDACName = "cmdac"
)

// ECC function names.
const (
	ECCAddRule      = "AddAccessRule"
	ECCRemoveRule   = "RemoveAccessRule"
	ECCListRules    = "GetAccessRules"
	ECCCheckAccess  = "CheckAccess"
	ECCAuthorize    = "Authorize"
	ECCEncrypt      = "EncryptForRequester"
	eccRulesKeyType = "ecc-rule"
)

// Transient keys the relay driver attaches to cross-network queries.
const (
	// TransientInteropFlag marks an invocation as a relayed cross-network
	// query.
	TransientInteropFlag = "interop"
	// TransientRequestingNetwork carries the requesting network's ID.
	TransientRequestingNetwork = "interop-network"
	// TransientNonce carries the client's replay nonce.
	TransientNonce = "interop-nonce"
)

var (
	// ErrAccessDenied is returned when no access rule permits a request.
	ErrAccessDenied = errors.New("syscc: access denied")
	// ErrBadArgs is returned for malformed invocation arguments.
	ErrBadArgs = errors.New("syscc: bad arguments")
	// ErrUnknownFunction is returned for unsupported function names.
	ErrUnknownFunction = errors.New("syscc: unknown function")
)

// ECC is the Exposure Control Chaincode.
type ECC struct{}

var _ chaincode.Chaincode = (*ECC)(nil)

// Invoke dispatches ECC functions.
func (e *ECC) Invoke(stub chaincode.Stub) ([]byte, error) {
	switch stub.Function() {
	case ECCAddRule:
		return e.addRule(stub)
	case ECCRemoveRule:
		return e.removeRule(stub)
	case ECCListRules:
		return e.listRules(stub)
	case ECCCheckAccess:
		return e.checkAccess(stub)
	case ECCAuthorize:
		return e.authorize(stub)
	case ECCEncrypt:
		return e.encrypt(stub)
	default:
		return nil, fmt.Errorf("%w: ecc.%s", ErrUnknownFunction, stub.Function())
	}
}

func ruleKey(r policy.AccessRule) (string, error) {
	return statedb.CompositeKey(eccRulesKeyType, r.Network, r.Org, r.Chaincode, r.Function)
}

// addRule records an access rule: args = [ruleJSON].
func (e *ECC) addRule(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: AddAccessRule expects 1 arg", ErrBadArgs)
	}
	rule, err := policy.UnmarshalAccessRule(args[0])
	if err != nil {
		return nil, err
	}
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	key, err := ruleKey(rule)
	if err != nil {
		return nil, err
	}
	if err := stub.PutState(key, args[0]); err != nil {
		return nil, err
	}
	return []byte(rule.String()), nil
}

// removeRule deletes an access rule: args = [ruleJSON].
func (e *ECC) removeRule(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 1 {
		return nil, fmt.Errorf("%w: RemoveAccessRule expects 1 arg", ErrBadArgs)
	}
	rule, err := policy.UnmarshalAccessRule(args[0])
	if err != nil {
		return nil, err
	}
	key, err := ruleKey(rule)
	if err != nil {
		return nil, err
	}
	existing, err := stub.GetState(key)
	if err != nil {
		return nil, err
	}
	if existing == nil {
		return nil, fmt.Errorf("syscc: rule %s not found", rule)
	}
	return nil, stub.DelState(key)
}

// listRules returns all recorded rules as a JSON array.
func (e *ECC) listRules(stub chaincode.Stub) ([]byte, error) {
	rules, err := loadRules(stub)
	if err != nil {
		return nil, err
	}
	return json.Marshal(rules.Rules)
}

func loadRules(stub chaincode.Stub) (*policy.RuleSet, error) {
	start, end, err := statedb.CompositeRange(eccRulesKeyType)
	if err != nil {
		return nil, err
	}
	kvs, err := stub.GetStateRange(start, end)
	if err != nil {
		return nil, err
	}
	set := &policy.RuleSet{}
	for _, kv := range kvs {
		rule, err := policy.UnmarshalAccessRule(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("syscc: corrupt rule at %q: %w", kv.Key, err)
		}
		set.Rules = append(set.Rules, rule)
	}
	return set, nil
}

// checkAccess evaluates the rule set: args = [network, org, chaincode,
// function]; returns "true" or "false".
func (e *ECC) checkAccess(stub chaincode.Stub) ([]byte, error) {
	args := stub.StringArgs()
	if len(args) != 4 {
		return nil, fmt.Errorf("%w: CheckAccess expects 4 args", ErrBadArgs)
	}
	rules, err := loadRules(stub)
	if err != nil {
		return nil, err
	}
	if rules.Permits(args[0], args[1], args[2], args[3]) {
		return []byte("true"), nil
	}
	return []byte("false"), nil
}

// authorize performs the full source-side access decision of §4.3: validate
// the requesting client's certificate against the recorded configuration of
// its network (held by the CMDAC), then check the access rules. Args =
// [requestingNetworkID, requesterCertPEM, chaincodeName, functionName];
// returns the authenticated organization ID.
func (e *ECC) authorize(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 4 {
		return nil, fmt.Errorf("%w: Authorize expects 4 args", ErrBadArgs)
	}
	networkID := string(args[0])
	certPEM := args[1]
	ccName := string(args[2])
	function := string(args[3])

	cfgBytes, err := stub.InvokeChaincode(CMDACName, CMDACGetNetworkConfig, [][]byte{[]byte(networkID)})
	if err != nil {
		return nil, fmt.Errorf("syscc: fetch config for %q: %w", networkID, err)
	}
	verifier, err := verifierFromConfig(cfgBytes)
	if err != nil {
		return nil, err
	}
	info, err := verifier.VerifyPEM(certPEM)
	if err != nil {
		return nil, fmt.Errorf("%w: requester certificate: %v", ErrAccessDenied, err)
	}
	rules, err := loadRules(stub)
	if err != nil {
		return nil, err
	}
	if !rules.Permits(networkID, info.OrgID, ccName, function) {
		return nil, fmt.Errorf("%w: no rule permits <%s, %s, %s, %s>",
			ErrAccessDenied, networkID, info.OrgID, ccName, function)
	}
	return []byte(info.OrgID), nil
}

// encrypt encrypts a response payload to the requesting client's public key
// (the paper's post-execution ECC encryption call): args = [requesterCertPEM,
// plaintext]; returns the ciphertext.
func (e *ECC) encrypt(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	if len(args) != 2 {
		return nil, fmt.Errorf("%w: EncryptForRequester expects 2 args", ErrBadArgs)
	}
	cert, err := msp.ParseCertPEM(args[0])
	if err != nil {
		return nil, fmt.Errorf("syscc: requester cert: %w", err)
	}
	pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("syscc: requester cert key is not ECDSA")
	}
	return cryptoutil.Encrypt(pub, args[1])
}

func verifierFromConfig(cfgBytes []byte) (*msp.Verifier, error) {
	cfg, err := wire.UnmarshalNetworkConfig(cfgBytes)
	if err != nil {
		return nil, fmt.Errorf("syscc: recorded network config: %w", err)
	}
	roots := make(map[string][]byte, len(cfg.Orgs))
	for _, org := range cfg.Orgs {
		roots[org.OrgID] = org.RootCertPEM
	}
	return msp.NewVerifier(roots)
}
