package statedb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestStoreAgainstModel drives the store and a plain per-namespace map
// through the same random operation sequence and checks full agreement,
// including range scans — a model-based test of the world state. Two
// namespaces share the same key strings, so any cross-namespace leakage in
// the sharded store shows up as a model divergence.
func TestStoreAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	store := NewStore()
	namespaces := []string{"ccA", "ccB"}
	model := map[string]map[string][]byte{
		"ccA": make(map[string][]byte),
		"ccB": make(map[string][]byte),
	}

	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	for step := 0; step < 2000; step++ {
		ns := namespaces[rng.Intn(len(namespaces))]
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(4) {
		case 0, 1: // write
			val := []byte(fmt.Sprintf("v-%d", step))
			store.ApplyWrites([]Write{{Namespace: ns, Key: key, Value: val}}, Version{BlockNum: uint64(step)})
			model[ns][key] = val
		case 2: // delete
			store.ApplyWrites([]Write{{Namespace: ns, Key: key, IsDelete: true}}, Version{BlockNum: uint64(step)})
			delete(model[ns], key)
		case 3: // read + compare
			got, ok := store.Get(ns, key)
			want, wantOK := model[ns][key]
			if ok != wantOK {
				t.Fatalf("step %d: Get(%q,%q) ok=%v want %v", step, ns, key, ok, wantOK)
			}
			if ok && !bytes.Equal(got.Value, want) {
				t.Fatalf("step %d: Get(%q,%q) = %q want %q", step, ns, key, got.Value, want)
			}
		}
		if step%100 == 0 {
			for _, n := range namespaces {
				compareRange(t, store, model[n], n, "key-05", "key-15")
				compareRange(t, store, model[n], n, "", "")
			}
		}
	}
	total := len(model["ccA"]) + len(model["ccB"])
	if store.Keys() != total {
		t.Fatalf("Keys = %d, model has %d", store.Keys(), total)
	}
}

func compareRange(t *testing.T, store *Store, model map[string][]byte, ns, start, end string) {
	t.Helper()
	got := store.Range(ns, start, end)
	var wantKeys []string
	for k := range model {
		if k < start {
			continue
		}
		if end != "" && k >= end {
			continue
		}
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	if len(got) != len(wantKeys) {
		t.Fatalf("Range(%q,%q,%q) = %d keys, want %d", ns, start, end, len(got), len(wantKeys))
	}
	for i, k := range wantKeys {
		if got[i].Key != k || !bytes.Equal(got[i].Value, model[k]) {
			t.Fatalf("Range(%q,%q,%q)[%d] = %q", ns, start, end, i, got[i].Key)
		}
	}
}
