package statedb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestStoreAgainstModel drives the store and a plain map through the same
// random operation sequence and checks full agreement, including range
// scans — a model-based test of the world state.
func TestStoreAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	store := NewStore()
	model := make(map[string][]byte)

	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	for step := 0; step < 2000; step++ {
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(4) {
		case 0, 1: // write
			val := []byte(fmt.Sprintf("v-%d", step))
			store.ApplyWrites([]Write{{Key: key, Value: val}}, Version{BlockNum: uint64(step)})
			model[key] = val
		case 2: // delete
			store.ApplyWrites([]Write{{Key: key, IsDelete: true}}, Version{BlockNum: uint64(step)})
			delete(model, key)
		case 3: // read + compare
			got, ok := store.Get(key)
			want, wantOK := model[key]
			if ok != wantOK {
				t.Fatalf("step %d: Get(%q) ok=%v want %v", step, key, ok, wantOK)
			}
			if ok && !bytes.Equal(got.Value, want) {
				t.Fatalf("step %d: Get(%q) = %q want %q", step, key, got.Value, want)
			}
		}
		if step%100 == 0 {
			compareRange(t, store, model, "key-05", "key-15")
			compareRange(t, store, model, "", "")
		}
	}
	if store.Keys() != len(model) {
		t.Fatalf("Keys = %d, model has %d", store.Keys(), len(model))
	}
}

func compareRange(t *testing.T, store *Store, model map[string][]byte, start, end string) {
	t.Helper()
	got := store.Range(start, end)
	var wantKeys []string
	for k := range model {
		if k < start {
			continue
		}
		if end != "" && k >= end {
			continue
		}
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	if len(got) != len(wantKeys) {
		t.Fatalf("Range(%q,%q) = %d keys, want %d", start, end, len(got), len(wantKeys))
	}
	for i, k := range wantKeys {
		if got[i].Key != k || !bytes.Equal(got[i].Value, model[k]) {
			t.Fatalf("Range(%q,%q)[%d] = %q", start, end, i, got[i].Key)
		}
	}
}
