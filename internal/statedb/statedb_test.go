package statedb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// tns is the chaincode namespace most tests operate in.
const tns = "cc"

func TestGetAbsent(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get(tns, "nope"); ok {
		t.Fatal("Get on empty store returned ok")
	}
}

func TestNamespaceIsolation(t *testing.T) {
	s := NewStore()
	s.ApplyWrites([]Write{
		{Namespace: "ccA", Key: "k", Value: []byte("a")},
		{Namespace: "ccB", Key: "k", Value: []byte("b")},
	}, Version{BlockNum: 1})
	va, _ := s.Get("ccA", "k")
	vb, _ := s.Get("ccB", "k")
	if !bytes.Equal(va.Value, []byte("a")) || !bytes.Equal(vb.Value, []byte("b")) {
		t.Fatalf("namespaces alias: a=%q b=%q", va.Value, vb.Value)
	}
	s.ApplyWrites([]Write{{Namespace: "ccA", Key: "k", IsDelete: true}}, Version{BlockNum: 2})
	if _, ok := s.Get("ccA", "k"); ok {
		t.Fatal("delete in ccA did not take")
	}
	if _, ok := s.Get("ccB", "k"); !ok {
		t.Fatal("delete in ccA leaked into ccB")
	}
	if got := s.Namespaces(); len(got) != 1 || got[0] != "ccB" {
		t.Fatalf("Namespaces = %v, want [ccB]", got)
	}
}

func TestApplyWritesAndGet(t *testing.T) {
	s := NewStore()
	v := Version{BlockNum: 3, TxNum: 1}
	s.ApplyWrites([]Write{
		{Namespace: tns, Key: "a", Value: []byte("1")},
		{Namespace: tns, Key: "b", Value: []byte("2")},
	}, v)
	vv, ok := s.Get(tns, "a")
	if !ok || !bytes.Equal(vv.Value, []byte("1")) || vv.Version != v {
		t.Fatalf("Get(a) = %+v, %v", vv, ok)
	}
	if s.Keys() != 2 {
		t.Fatalf("Keys = %d", s.Keys())
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	s.ApplyWrites([]Write{{Namespace: tns, Key: "a", Value: []byte("1")}}, Version{BlockNum: 1})
	s.ApplyWrites([]Write{{Namespace: tns, Key: "a", IsDelete: true}}, Version{BlockNum: 2})
	if _, ok := s.Get(tns, "a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestOverwriteBumpsVersion(t *testing.T) {
	s := NewStore()
	s.ApplyWrites([]Write{{Namespace: tns, Key: "k", Value: []byte("v1")}}, Version{BlockNum: 1, TxNum: 0})
	s.ApplyWrites([]Write{{Namespace: tns, Key: "k", Value: []byte("v2")}}, Version{BlockNum: 2, TxNum: 5})
	ver, ok := s.Version(tns, "k")
	if !ok || ver != (Version{BlockNum: 2, TxNum: 5}) {
		t.Fatalf("Version = %+v, %v", ver, ok)
	}
}

func TestValueIsolation(t *testing.T) {
	s := NewStore()
	src := []byte("mutable")
	s.ApplyWrites([]Write{{Namespace: tns, Key: "k", Value: src}}, Version{})
	src[0] = 'X'
	vv, _ := s.Get(tns, "k")
	if vv.Value[0] == 'X' {
		t.Fatal("store aliases caller's write buffer")
	}
	vv.Value[0] = 'Y'
	vv2, _ := s.Get(tns, "k")
	if vv2.Value[0] == 'Y' {
		t.Fatal("store exposes internal buffer to readers")
	}
}

func TestVersionBefore(t *testing.T) {
	cases := []struct {
		a, b Version
		want bool
	}{
		{Version{1, 0}, Version{2, 0}, true},
		{Version{2, 0}, Version{1, 9}, false},
		{Version{1, 1}, Version{1, 2}, true},
		{Version{1, 2}, Version{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Before(c.b); got != c.want {
			t.Fatalf("%+v.Before(%+v) = %v", c.a, c.b, got)
		}
	}
}

func TestRangeOrderedAndBounded(t *testing.T) {
	s := NewStore()
	for _, k := range []string{"b", "d", "a", "c", "e"} {
		s.ApplyWrites([]Write{{Namespace: tns, Key: k, Value: []byte(k)}}, Version{})
	}
	got := s.Range(tns, "b", "e")
	if len(got) != 3 {
		t.Fatalf("Range returned %d keys", len(got))
	}
	for i, want := range []string{"b", "c", "d"} {
		if got[i].Key != want {
			t.Fatalf("Range[%d] = %q, want %q", i, got[i].Key, want)
		}
	}
}

func TestRangeOpenEnd(t *testing.T) {
	s := NewStore()
	for _, k := range []string{"x1", "x2", "y1"} {
		s.ApplyWrites([]Write{{Namespace: tns, Key: k, Value: []byte(k)}}, Version{})
	}
	got := s.Range(tns, "x2", "")
	if len(got) != 2 || got[0].Key != "x2" || got[1].Key != "y1" {
		t.Fatalf("open-ended Range = %+v", got)
	}
}

func TestCompositeKeyRoundTrip(t *testing.T) {
	key, err := CompositeKey("shipment", "po-1001", "v2")
	if err != nil {
		t.Fatalf("CompositeKey: %v", err)
	}
	objType, parts := SplitCompositeKey(key)
	if objType != "shipment" || len(parts) != 2 || parts[0] != "po-1001" || parts[1] != "v2" {
		t.Fatalf("SplitCompositeKey = %q, %q", objType, parts)
	}
}

func TestCompositeKeyRejectsSeparator(t *testing.T) {
	if _, err := CompositeKey("a\x00b"); err == nil {
		t.Fatal("object type with separator accepted")
	}
	if _, err := CompositeKey("t", "a\x00b"); err == nil {
		t.Fatal("part with separator accepted")
	}
	if _, err := CompositeKey(""); err == nil {
		t.Fatal("empty object type accepted")
	}
}

func TestCompositeRangeCoversChildren(t *testing.T) {
	s := NewStore()
	mk := func(parts ...string) string {
		k, err := CompositeKey("lc", parts...)
		if err != nil {
			t.Fatalf("CompositeKey: %v", err)
		}
		return k
	}
	s.ApplyWrites([]Write{
		{Namespace: tns, Key: mk("bank1", "lc-1"), Value: []byte("a")},
		{Namespace: tns, Key: mk("bank1", "lc-2"), Value: []byte("b")},
		{Namespace: tns, Key: mk("bank2", "lc-3"), Value: []byte("c")},
	}, Version{})
	start, end, err := CompositeRange("lc", "bank1")
	if err != nil {
		t.Fatalf("CompositeRange: %v", err)
	}
	got := s.Range(tns, start, end)
	if len(got) != 2 {
		t.Fatalf("composite range returned %d keys, want 2", len(got))
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%10)
				s.ApplyWrites([]Write{{Namespace: tns, Key: key, Value: []byte{byte(g)}}}, Version{BlockNum: uint64(i)})
				s.Get(tns, key)
				s.Range(tns, "k0", "k9")
			}
		}(g)
	}
	wg.Wait()
}

// TestPutGetProperty: whatever is written is read back, for arbitrary keys
// and values.
func TestPutGetProperty(t *testing.T) {
	s := NewStore()
	prop := func(key string, val []byte) bool {
		if key == "" {
			return true
		}
		s.ApplyWrites([]Write{{Namespace: tns, Key: key, Value: val}}, Version{})
		vv, ok := s.Get(tns, key)
		return ok && bytes.Equal(vv.Value, val)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApplyWrites(b *testing.B) {
	s := NewStore()
	w := []Write{{Namespace: tns, Key: "key", Value: make([]byte, 256)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ApplyWrites(w, Version{BlockNum: uint64(i)})
	}
}

func BenchmarkGet(b *testing.B) {
	s := NewStore()
	s.ApplyWrites([]Write{{Namespace: tns, Key: "key", Value: make([]byte, 256)}}, Version{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(tns, "key")
	}
}
