// Package statedb implements the versioned key-value world state underlying
// each ledger. Every committed value carries the (block, tx) version that
// wrote it, which is what makes Fabric-style MVCC validation possible: a
// transaction's read set records the versions observed during simulation,
// and the committer rejects the transaction if any of those keys have moved
// on by commit time.
//
// Keys live inside chaincode namespaces, as in Fabric: chaincode A's "k"
// and chaincode B's "k" are different keys. The store is sharded by
// namespace with one lock per shard, so the parallel committer can apply
// write-sets touching different namespaces concurrently without ever
// contending on a global lock.
package statedb

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// ErrInvalidKey is returned for keys that are empty or contain the composite
// key separator.
var ErrInvalidKey = errors.New("statedb: invalid key")

// compositeSep separates the parts of a composite key. U+0000 cannot appear
// in application key parts.
const compositeSep = "\x00"

// Version identifies the transaction that last wrote a key.
type Version struct {
	BlockNum uint64
	TxNum    uint64
}

// Before reports whether v was committed strictly before other.
func (v Version) Before(other Version) bool {
	if v.BlockNum != other.BlockNum {
		return v.BlockNum < other.BlockNum
	}
	return v.TxNum < other.TxNum
}

// VersionedValue is a stored value and the version that wrote it.
type VersionedValue struct {
	Value   []byte
	Version Version
}

// KV is a key with its versioned value, as returned by range scans.
type KV struct {
	Key     string
	Value   []byte
	Version Version
}

// Write is a single update in a write batch: a put, or a delete when
// IsDelete is set. Namespace is the chaincode namespace the key lives in.
type Write struct {
	Namespace string
	Key       string
	Value     []byte
	IsDelete  bool
}

// shard is one namespace's key space with its own lock.
type shard struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
}

// Store is an in-memory versioned world state sharded by chaincode
// namespace. It is safe for concurrent use; reads see a consistent view
// under the owning shard's lock, and writes into different namespaces
// never contend.
type Store struct {
	mu     sync.RWMutex // guards the shard map only
	shards map[string]*shard
}

// NewStore returns an empty world state.
func NewStore() *Store {
	return &Store{shards: make(map[string]*shard)}
}

// shardOf returns the shard for a namespace, creating it when create is
// set. Returns nil for an absent namespace when create is false.
func (s *Store) shardOf(ns string, create bool) *shard {
	s.mu.RLock()
	sh := s.shards[ns]
	s.mu.RUnlock()
	if sh != nil || !create {
		return sh
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh = s.shards[ns]; sh == nil {
		sh = &shard{data: make(map[string]VersionedValue)}
		s.shards[ns] = sh
	}
	return sh
}

// Get returns the value for key in a namespace, or ok=false if absent. The
// returned value is a copy; callers may mutate it freely.
func (s *Store) Get(ns, key string) (VersionedValue, bool) {
	sh := s.shardOf(ns, false)
	if sh == nil {
		return VersionedValue{}, false
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	vv, ok := sh.data[key]
	if !ok {
		return VersionedValue{}, false
	}
	val := make([]byte, len(vv.Value))
	copy(val, vv.Value)
	return VersionedValue{Value: val, Version: vv.Version}, true
}

// Version returns the committed version for a namespaced key and whether it
// exists.
func (s *Store) Version(ns, key string) (Version, bool) {
	sh := s.shardOf(ns, false)
	if sh == nil {
		return Version{}, false
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	vv, ok := sh.data[key]
	return vv.Version, ok
}

// ApplyWrites commits a batch of writes at the given version. The batch is
// grouped by namespace and each namespace's portion is applied atomically
// under that shard's lock; batches touching disjoint namespaces (or
// disjoint keys — the committer's conflict scheduler guarantees no two
// concurrent batches write the same key) may be applied concurrently.
func (s *Store) ApplyWrites(writes []Write, v Version) {
	for start := 0; start < len(writes); {
		ns := writes[start].Namespace
		end := start + 1
		for end < len(writes) && writes[end].Namespace == ns {
			end++
		}
		sh := s.shardOf(ns, true)
		sh.mu.Lock()
		for _, w := range writes[start:end] {
			if w.IsDelete {
				delete(sh.data, w.Key)
				continue
			}
			val := make([]byte, len(w.Value))
			copy(val, w.Value)
			sh.data[w.Key] = VersionedValue{Value: val, Version: v}
		}
		sh.mu.Unlock()
		start = end
	}
}

// Range returns all keys of one namespace in [start, end) in lexical order.
// An empty end means "to the last key". Values are copies.
func (s *Store) Range(ns, start, end string) []KV {
	sh := s.shardOf(ns, false)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]KV, 0, 16)
	for k, vv := range sh.data {
		if k < start {
			continue
		}
		if end != "" && k >= end {
			continue
		}
		val := make([]byte, len(vv.Value))
		copy(val, vv.Value)
		out = append(out, KV{Key: k, Value: val, Version: vv.Version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Namespaces returns every namespace that currently holds at least one key,
// sorted.
func (s *Store) Namespaces() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.shards))
	for ns, sh := range s.shards {
		sh.mu.RLock()
		n := len(sh.data)
		sh.mu.RUnlock()
		if n > 0 {
			out = append(out, ns)
		}
	}
	sort.Strings(out)
	return out
}

// Keys returns the number of keys currently stored across all namespaces.
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += len(sh.data)
		sh.mu.RUnlock()
	}
	return total
}

// CompositeKey builds a scan-friendly key from an object type and
// attributes, e.g. CompositeKey("shipment", "po-1001"). Parts must not
// contain the U+0000 separator.
func CompositeKey(objectType string, parts ...string) (string, error) {
	if objectType == "" || strings.Contains(objectType, compositeSep) {
		return "", ErrInvalidKey
	}
	var b strings.Builder
	b.WriteString(objectType)
	for _, p := range parts {
		if strings.Contains(p, compositeSep) {
			return "", ErrInvalidKey
		}
		b.WriteString(compositeSep)
		b.WriteString(p)
	}
	return b.String(), nil
}

// CompositeRange returns the [start, end) bounds that cover every composite
// key with the given object type and attribute prefix.
func CompositeRange(objectType string, parts ...string) (start, end string, err error) {
	start, err = CompositeKey(objectType, parts...)
	if err != nil {
		return "", "", err
	}
	start += compositeSep
	end = start + "\xff"
	return start, end, nil
}

// SplitCompositeKey splits a composite key into its object type and parts.
func SplitCompositeKey(key string) (objectType string, parts []string) {
	segments := strings.Split(key, compositeSep)
	if len(segments) == 0 {
		return "", nil
	}
	return segments[0], segments[1:]
}
