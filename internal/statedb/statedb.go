// Package statedb implements the versioned key-value world state underlying
// each ledger. Every committed value carries the (block, tx) version that
// wrote it, which is what makes Fabric-style MVCC validation possible: a
// transaction's read set records the versions observed during simulation,
// and the committer rejects the transaction if any of those keys have moved
// on by commit time.
package statedb

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// ErrInvalidKey is returned for keys that are empty or contain the composite
// key separator.
var ErrInvalidKey = errors.New("statedb: invalid key")

// compositeSep separates the parts of a composite key. U+0000 cannot appear
// in application key parts.
const compositeSep = "\x00"

// Version identifies the transaction that last wrote a key.
type Version struct {
	BlockNum uint64
	TxNum    uint64
}

// Before reports whether v was committed strictly before other.
func (v Version) Before(other Version) bool {
	if v.BlockNum != other.BlockNum {
		return v.BlockNum < other.BlockNum
	}
	return v.TxNum < other.TxNum
}

// VersionedValue is a stored value and the version that wrote it.
type VersionedValue struct {
	Value   []byte
	Version Version
}

// KV is a key with its versioned value, as returned by range scans.
type KV struct {
	Key     string
	Value   []byte
	Version Version
}

// Write is a single update in a write batch: a put, or a delete when
// IsDelete is set.
type Write struct {
	Key      string
	Value    []byte
	IsDelete bool
}

// Store is an in-memory versioned world state. It is safe for concurrent
// use; reads see a consistent view under the lock.
type Store struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
}

// NewStore returns an empty world state.
func NewStore() *Store {
	return &Store{data: make(map[string]VersionedValue)}
}

// Get returns the value for key, or ok=false if absent. The returned value
// is a copy; callers may mutate it freely.
func (s *Store) Get(key string) (VersionedValue, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vv, ok := s.data[key]
	if !ok {
		return VersionedValue{}, false
	}
	val := make([]byte, len(vv.Value))
	copy(val, vv.Value)
	return VersionedValue{Value: val, Version: vv.Version}, true
}

// Version returns the committed version for key and whether it exists.
func (s *Store) Version(key string) (Version, bool) {
	vv, ok := s.Get(key)
	return vv.Version, ok
}

// ApplyWrites commits a batch of writes at the given version atomically.
func (s *Store) ApplyWrites(writes []Write, v Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range writes {
		if w.IsDelete {
			delete(s.data, w.Key)
			continue
		}
		val := make([]byte, len(w.Value))
		copy(val, w.Value)
		s.data[w.Key] = VersionedValue{Value: val, Version: v}
	}
}

// Range returns all keys in [start, end) in lexical order. An empty end
// means "to the last key". Values are copies.
func (s *Store) Range(start, end string) []KV {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]KV, 0, 16)
	for k, vv := range s.data {
		if k < start {
			continue
		}
		if end != "" && k >= end {
			continue
		}
		val := make([]byte, len(vv.Value))
		copy(val, vv.Value)
		out = append(out, KV{Key: k, Value: val, Version: vv.Version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Keys returns the number of keys currently stored.
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// CompositeKey builds a scan-friendly key from an object type and
// attributes, e.g. CompositeKey("shipment", "po-1001"). Parts must not
// contain the U+0000 separator.
func CompositeKey(objectType string, parts ...string) (string, error) {
	if objectType == "" || strings.Contains(objectType, compositeSep) {
		return "", ErrInvalidKey
	}
	var b strings.Builder
	b.WriteString(objectType)
	for _, p := range parts {
		if strings.Contains(p, compositeSep) {
			return "", ErrInvalidKey
		}
		b.WriteString(compositeSep)
		b.WriteString(p)
	}
	return b.String(), nil
}

// CompositeRange returns the [start, end) bounds that cover every composite
// key with the given object type and attribute prefix.
func CompositeRange(objectType string, parts ...string) (start, end string, err error) {
	start, err = CompositeKey(objectType, parts...)
	if err != nil {
		return "", "", err
	}
	start += compositeSep
	end = start + "\xff"
	return start, end, nil
}

// SplitCompositeKey splits a composite key into its object type and parts.
func SplitCompositeKey(key string) (objectType string, parts []string) {
	segments := strings.Split(key, compositeSep)
	if len(segments) == 0 {
		return "", nil
	}
	return segments[0], segments[1:]
}
