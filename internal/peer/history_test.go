package peer

import (
	"bytes"
	"testing"

	"repro/internal/ledger"
)

func commitOne(t *testing.T, p *Peer, num uint64, fn string, args ...string) *ledger.Transaction {
	t.Helper()
	proposal := inv(fn, args...)
	proposal.TxID = "tx-" + args[0] + "-" + string(rune('0'+num))
	resp, err := p.Endorse(proposal)
	if err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	tx, err := AssembleTransaction(proposal, []*ProposalResponse{resp})
	if err != nil {
		t.Fatalf("AssembleTransaction: %v", err)
	}
	block := &ledger.Block{Number: num, PrevHash: p.Blocks().TipHash(),
		Transactions: []*ledger.Transaction{tx}}
	block.Hash = block.ComputeHash()
	if err := p.CommitBlock(block); err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	return tx
}

func TestKeyHistoryRecordsChanges(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	commitOne(t, p, 0, "put", "k", "v1")
	commitOne(t, p, 1, "put", "k", "v2")
	commitOne(t, p, 2, "del", "k")

	hist := p.KeyHistory("kv", "k")
	if len(hist) != 3 {
		t.Fatalf("history = %d entries", len(hist))
	}
	if !bytes.Equal(hist[0].Value, []byte("v1")) || hist[0].BlockNum != 0 {
		t.Fatalf("hist[0] = %+v", hist[0])
	}
	if !bytes.Equal(hist[1].Value, []byte("v2")) || hist[1].BlockNum != 1 {
		t.Fatalf("hist[1] = %+v", hist[1])
	}
	if !hist[2].IsDelete {
		t.Fatalf("hist[2] = %+v", hist[2])
	}
}

func TestKeyHistorySkipsInvalidTxs(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	// An unendorsed transaction fails validation; its writes must not
	// appear in the history.
	tx := &ledger.Transaction{
		ID: "tx-bad", Chaincode: "kv", Function: "put",
		RWSet: ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte("bad")}}},
	}
	block := &ledger.Block{Number: 0, Transactions: []*ledger.Transaction{tx}}
	block.Hash = block.ComputeHash()
	if err := p.CommitBlock(block); err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	if got := p.KeyHistory("kv", "k"); len(got) != 0 {
		t.Fatalf("invalid tx recorded in history: %+v", got)
	}
}

func TestKeyHistoryEmptyAndIsolated(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	if got := p.KeyHistory("kv", "never-written"); len(got) != 0 {
		t.Fatalf("phantom history: %+v", got)
	}
	commitOne(t, p, 0, "put", "k", "v1")
	hist := p.KeyHistory("kv", "k")
	hist[0].Value[0] = 'X' // mutating the copy must not affect the index
	hist2 := p.KeyHistory("kv", "k")
	if hist2[0].Value[0] == 'X' {
		t.Fatal("history exposes internal buffers")
	}
}
