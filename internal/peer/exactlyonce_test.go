package peer

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/chaincode"
	"repro/internal/ledger"
)

// endorseTx endorses one invocation on p and assembles the single-endorser
// transaction.
func endorseTx(t *testing.T, p *Peer, proposal chaincode.Invocation) *ledger.Transaction {
	t.Helper()
	resp, err := p.Endorse(proposal)
	if err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	tx, err := AssembleTransaction(proposal, []*ProposalResponse{resp})
	if err != nil {
		t.Fatalf("AssembleTransaction: %v", err)
	}
	return tx
}

func commit(t *testing.T, p *Peer, num uint64, txs ...*ledger.Transaction) {
	t.Helper()
	block := &ledger.Block{Number: num, PrevHash: p.Blocks().TipHash(), Transactions: txs}
	block.Hash = block.ComputeHash()
	if err := p.CommitBlock(block); err != nil {
		t.Fatalf("CommitBlock %d: %v", num, err)
	}
}

func interopInv(txID, key, k, v string) chaincode.Invocation {
	return chaincode.Invocation{
		TxID: txID, Chaincode: "kv", Function: "put",
		Args:       [][]byte{[]byte(k), []byte(v)},
		Timestamp:  time.Unix(1700000000, 0),
		InteropKey: key,
	}
}

// TestCommitMarksSecondTxIDDuplicate: a transaction whose ID already
// committed as valid is marked Duplicate and its writes are not applied —
// the cross-block half of the ledger-level exactly-once check.
func TestCommitMarksSecondTxIDDuplicate(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	first := endorseTx(t, p, interopInv("interop-tx-1", "key-1", "k", "v1"))
	commit(t, p, 0, first)
	if first.Validation != ledger.Valid {
		t.Fatalf("first commit = %v", first.Validation)
	}

	// The same logical invoke re-endorsed (same TxID, same interop key)
	// through a second relay, landing in a later block.
	second := endorseTx(t, p, interopInv("interop-tx-1", "key-1", "k", "v2"))
	commit(t, p, 1, second)
	if second.Validation != ledger.Duplicate {
		t.Fatalf("second commit = %v, want %v", second.Validation, ledger.Duplicate)
	}
	vv, ok := p.State().Get("kv", "k")
	if !ok || !bytes.Equal(vv.Value, []byte("v1")) {
		t.Fatalf("state = %q, want the original write only", vv.Value)
	}
}

// TestCommitMarksInBlockDuplicate: both copies of a raced invoke can land
// in the same block, where the chain index cannot see either yet; the
// in-block seen set must still collapse them.
func TestCommitMarksInBlockDuplicate(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	first := endorseTx(t, p, interopInv("interop-tx-1", "key-1", "k", "v1"))
	second := endorseTx(t, p, interopInv("interop-tx-1", "key-1", "k", "v1"))
	commit(t, p, 0, first, second)
	if first.Validation != ledger.Valid {
		t.Fatalf("first tx = %v", first.Validation)
	}
	if second.Validation != ledger.Duplicate {
		t.Fatalf("second tx = %v, want %v", second.Validation, ledger.Duplicate)
	}
}

// TestCommitMarksDuplicateByInteropKey: different TxIDs, same interop
// request key — still a duplicate. The request identity, not the platform
// transaction identity, is what exactly-once is defined over.
func TestCommitMarksDuplicateByInteropKey(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	first := endorseTx(t, p, interopInv("interop-tx-a", "key-1", "k", "v1"))
	commit(t, p, 0, first)

	second := endorseTx(t, p, interopInv("interop-tx-b", "key-1", "k2", "v2"))
	commit(t, p, 1, second)
	if second.Validation != ledger.Duplicate {
		t.Fatalf("second tx = %v, want %v", second.Validation, ledger.Duplicate)
	}
	if _, ok := p.State().Get("kv", "k2"); ok {
		t.Fatal("duplicate-by-interop-key write was applied")
	}
}

// TestFailedAttemptMayRetrySameTxID: only valid commits count as
// duplicates. A transaction that failed validation may be resubmitted
// under the same TxID and interop key, and the retry commits.
func TestFailedAttemptMayRetrySameTxID(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	// An unendorsable transaction fails validation.
	naked := &ledger.Transaction{
		ID: "interop-tx-1", InteropKey: "key-1", Chaincode: "kv", Function: "put",
		RWSet: ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte("v0")}}},
	}
	commit(t, p, 0, naked)
	if naked.Validation != ledger.EndorsementFailure {
		t.Fatalf("naked tx = %v", naked.Validation)
	}

	retry := endorseTx(t, p, interopInv("interop-tx-1", "key-1", "k", "v1"))
	commit(t, p, 1, retry)
	if retry.Validation != ledger.Valid {
		t.Fatalf("retry = %v, want valid (failed attempts are not duplicates)", retry.Validation)
	}
	vv, ok := p.State().Get("kv", "k")
	if !ok || !bytes.Equal(vv.Value, []byte("v1")) {
		t.Fatalf("state = %q", vv.Value)
	}
}

// TestLocalTransactionsUnaffectedByInteropMetadata: a transaction without
// an interop key never trips the interop half of the duplicate check, and
// distinct local transactions commit as before.
func TestLocalTransactionsUnaffectedByInteropMetadata(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	first := endorseTx(t, p, interopInv("tx-1", "", "k", "v1"))
	commit(t, p, 0, first)
	second := endorseTx(t, p, interopInv("tx-2", "", "k", "v2"))
	commit(t, p, 1, second)
	if first.Validation != ledger.Valid || second.Validation != ledger.Valid {
		t.Fatalf("validations = %v, %v", first.Validation, second.Validation)
	}
	vv, _ := p.State().Get("kv", "k")
	if !bytes.Equal(vv.Value, []byte("v2")) {
		t.Fatalf("state = %q", vv.Value)
	}
}
