package peer

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chaincode"
	"repro/internal/endorsement"
	"repro/internal/ledger"
	"repro/internal/msp"
)

// propKV is the property-test contract: enough operation shapes to generate
// every interesting read/write dependency — blind writes, deletes, reads,
// read-modify-writes, and cross-chaincode reads that put a second namespace
// into the read set.
var propKV = chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
	args := stub.Args()
	switch stub.Function() {
	case "put":
		return nil, stub.PutState(string(args[0]), args[1])
	case "del":
		return nil, stub.DelState(string(args[0]))
	case "get":
		return stub.GetState(string(args[0]))
	case "bump":
		v, err := stub.GetState(string(args[0]))
		if err != nil {
			return nil, err
		}
		return nil, stub.PutState(string(args[0]), append(v, 'x'))
	case "xbump":
		// Read a key from the sibling chaincode's namespace, write locally:
		// a two-namespace read set with a one-namespace write set.
		v, err := stub.InvokeChaincode(string(args[1]), "get", [][]byte{args[0]})
		if err != nil {
			return nil, err
		}
		return nil, stub.PutState(string(args[0]), append(v, 'y'))
	default:
		return nil, errors.New("unknown")
	}
})

// propFixture is one world: an endorser peer whose state tracks the
// committed chain (simulations run against it), plus the serial and
// parallel peers under comparison.
type propFixture struct {
	endorser, serial, parallel *Peer
}

func newPropFixture(t *testing.T, workers int) *propFixture {
	t.Helper()
	ca, err := msp.NewCA("org-a")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	verifier, err := msp.NewVerifier(map[string][]byte{"org-a": ca.RootCertPEM()})
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	reg := chaincode.NewRegistry()
	reg.Register("ccA", propKV)
	reg.Register("ccB", propKV)
	providers := &fixedProviders{verifier: verifier, policy: endorsement.MustParse("'org-a'")}

	newPeer := func(name string) *Peer {
		id, err := ca.Issue(name, msp.RolePeer)
		if err != nil {
			t.Fatalf("Issue %s: %v", name, err)
		}
		return New(id, reg, providers, providers)
	}
	f := &propFixture{
		endorser: newPeer("org-a-endorser"),
		serial:   newPeer("org-a-serial"),
		parallel: newPeer("org-a-parallel"),
	}
	f.parallel.SetCommitterWorkers(workers)
	return f
}

// dumpState flattens a peer's world state for comparison.
func dumpState(p *Peer) string {
	var buf bytes.Buffer
	for _, ns := range p.State().Namespaces() {
		for _, kv := range p.State().Range(ns, "", "") {
			fmt.Fprintf(&buf, "%s/%s=%q@%d.%d\n", ns, kv.Key, kv.Value, kv.Version.BlockNum, kv.Version.TxNum)
		}
	}
	return buf.String()
}

// TestParallelCommitterEquivalentToSerial drives randomized conflict
// schedules — contended keys, read-modify-writes, cross-namespace reads,
// duplicate transaction IDs and interop keys, corrupted signatures —
// through the serial committer and the parallel committer and demands
// byte-identical outcomes: every transaction's validation code and the full
// namespaced world state after every block.
func TestParallelCommitterEquivalentToSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalenceSchedule(t, seed, 12, 8)
		})
	}
}

func runEquivalenceSchedule(t *testing.T, seed int64, blocks, workers int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	f := newPropFixture(t, workers)
	chaincodes := []string{"ccA", "ccB"}
	keys := []string{"k0", "k1", "k2", "k3"}
	var usedTxIDs, usedInteropKeys []string
	nextID := 0

	for blockNum := 0; blockNum < blocks; blockNum++ {
		n := 2 + r.Intn(8)
		invs := make([]chaincode.Invocation, 0, n)
		for i := 0; i < n; i++ {
			cc := chaincodes[r.Intn(len(chaincodes))]
			key := keys[r.Intn(len(keys))]
			var inv chaincode.Invocation
			switch r.Intn(10) {
			case 0:
				inv = chaincode.Invocation{Chaincode: cc, Function: "del", Args: [][]byte{[]byte(key)}}
			case 1, 2:
				inv = chaincode.Invocation{Chaincode: cc, Function: "get", Args: [][]byte{[]byte(key)}}
			case 3, 4, 5:
				inv = chaincode.Invocation{Chaincode: cc, Function: "bump", Args: [][]byte{[]byte(key)}}
			case 6:
				other := chaincodes[(r.Intn(len(chaincodes))+1)%len(chaincodes)]
				inv = chaincode.Invocation{Chaincode: cc, Function: "xbump", Args: [][]byte{[]byte(key), []byte(other)}}
			default:
				inv = chaincode.Invocation{Chaincode: cc, Function: "put",
					Args: [][]byte{[]byte(key), []byte(fmt.Sprintf("v%d", nextID))}}
			}
			// Transaction identity: mostly fresh, sometimes a replay of an
			// earlier ID or interop key to exercise the duplicate check —
			// both the chain index and the intra-block guard.
			switch {
			case len(usedTxIDs) > 0 && r.Intn(10) == 0:
				inv.TxID = usedTxIDs[r.Intn(len(usedTxIDs))]
			default:
				inv.TxID = fmt.Sprintf("tx-%d", nextID)
			}
			if r.Intn(4) == 0 {
				if len(usedInteropKeys) > 0 && r.Intn(3) == 0 {
					inv.InteropKey = usedInteropKeys[r.Intn(len(usedInteropKeys))]
				} else {
					inv.InteropKey = fmt.Sprintf("ik-%d", nextID)
					usedInteropKeys = append(usedInteropKeys, inv.InteropKey)
				}
			}
			usedTxIDs = append(usedTxIDs, inv.TxID)
			nextID++
			inv.Timestamp = time.Unix(1700000000, int64(nextID))
			invs = append(invs, inv)
		}

		// Endorse every transaction against the pre-block state, then
		// assemble an independent copy per peer: committers set Validation
		// in place, so the two runs must not share transaction objects.
		mkBlock := func(p *Peer) *ledger.Block {
			return &ledger.Block{Number: uint64(blockNum), PrevHash: p.Blocks().TipHash()}
		}
		serialBlock, parallelBlock, endorserBlock := mkBlock(f.serial), mkBlock(f.parallel), mkBlock(f.endorser)
		for i, inv := range invs {
			resp, err := f.endorser.Endorse(inv)
			if err != nil {
				t.Fatalf("block %d: endorse %s.%s: %v", blockNum, inv.Chaincode, inv.Function, err)
			}
			responses := []*ProposalResponse{resp}
			// Decide corruption once per transaction so every peer's copy
			// is corrupted (or not) alike: the concurrent endorsement stage
			// must produce the same BadSignature verdict as the serial one.
			corrupt := i%7 == 3 && r.Intn(4) == 0
			for _, blk := range []*ledger.Block{serialBlock, parallelBlock, endorserBlock} {
				tx, err := AssembleTransaction(inv, responses)
				if err != nil {
					t.Fatalf("block %d: assemble: %v", blockNum, err)
				}
				if corrupt {
					tx.Endorsements[0].Signature = append([]byte(nil), tx.Endorsements[0].Signature...)
					tx.Endorsements[0].Signature[0] ^= 0xff
				}
				blk.Transactions = append(blk.Transactions, tx)
			}
		}
		for _, blk := range []*ledger.Block{serialBlock, parallelBlock, endorserBlock} {
			blk.Hash = blk.ComputeHash()
		}

		for name, pair := range map[string]struct {
			p *Peer
			b *ledger.Block
		}{
			"serial": {f.serial, serialBlock}, "parallel": {f.parallel, parallelBlock}, "endorser": {f.endorser, endorserBlock},
		} {
			if err := pair.p.CommitBlock(pair.b); err != nil {
				t.Fatalf("block %d: commit on %s: %v", blockNum, name, err)
			}
		}

		for i := range serialBlock.Transactions {
			s, q := serialBlock.Transactions[i], parallelBlock.Transactions[i]
			if s.Validation != q.Validation {
				t.Fatalf("block %d tx %d (%s %s.%s): serial=%v parallel=%v",
					blockNum, i, s.ID, s.Chaincode, s.Function, s.Validation, q.Validation)
			}
		}
		if got, want := dumpState(f.parallel), dumpState(f.serial); got != want {
			t.Fatalf("block %d: state diverged\nserial:\n%s\nparallel:\n%s", blockNum, want, got)
		}
	}
	if f.serial.State().Keys() == 0 {
		t.Fatal("schedule committed nothing; property vacuous")
	}
}

// TestParallelCommitterWorkerSweep re-runs one schedule across worker-pool
// sizes, including workers exceeding the block size.
func TestParallelCommitterWorkerSweep(t *testing.T) {
	for _, workers := range []int{2, 4, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runEquivalenceSchedule(t, 7, 8, workers)
		})
	}
}

// TestSerialFallbackKnob: workers <= 1 routes through the serial committer
// even for multi-transaction blocks (the rollback knob), and re-raising the
// count re-enables the parallel path — both verified behaviorally via
// version stamps identical to the serial reference.
func TestSerialFallbackKnob(t *testing.T) {
	f := newPropFixture(t, 1)
	// With workers=1 the parallel peer must behave exactly like the serial
	// one on a contended block — same verdicts by construction of a shared
	// schedule either way; the cheap proxy is that both commit and agree.
	inv1 := chaincode.Invocation{TxID: "ta", Chaincode: "ccA", Function: "put",
		Args: [][]byte{[]byte("k"), []byte("1")}, Timestamp: time.Unix(1700000000, 0)}
	inv2 := chaincode.Invocation{TxID: "tb", Chaincode: "ccA", Function: "bump",
		Args: [][]byte{[]byte("k")}, Timestamp: time.Unix(1700000000, 1)}
	for _, p := range []*Peer{f.serial, f.parallel} {
		var txs []*ledger.Transaction
		for _, inv := range []chaincode.Invocation{inv1, inv2} {
			resp, err := f.endorser.Endorse(inv)
			if err != nil {
				t.Fatalf("endorse: %v", err)
			}
			tx, err := AssembleTransaction(inv, []*ProposalResponse{resp})
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			txs = append(txs, tx)
		}
		b := &ledger.Block{Number: 0, Transactions: txs}
		b.Hash = b.ComputeHash()
		if err := p.CommitBlock(b); err != nil {
			t.Fatalf("commit: %v", err)
		}
		if txs[0].Validation != ledger.Valid {
			t.Fatalf("put validation = %v", txs[0].Validation)
		}
		// bump read k's pre-block version; the in-block put moved it, so
		// MVCC invalidates — on the serial path and the workers=1 path.
		if txs[1].Validation != ledger.MVCCConflict {
			t.Fatalf("bump validation = %v, want mvcc-conflict", txs[1].Validation)
		}
	}
	if dumpState(f.parallel) != dumpState(f.serial) {
		t.Fatal("state diverged under the serial-fallback knob")
	}
	if _, ok := f.parallel.State().Get("ccA", "k"); !ok {
		t.Fatal("put not applied")
	}

	// Version stamps are identical too — the parallel committer reuses the
	// serial committer's (block, tx) version numbering.
	sv, _ := f.serial.State().Version("ccA", "k")
	pv, _ := f.parallel.State().Version("ccA", "k")
	if sv != pv {
		t.Fatalf("version stamps diverge: serial=%v parallel=%v", sv, pv)
	}
}
