// Package peer implements the peer node of the simulated platform. A peer
// plays two roles from Fabric's execute-order-validate pipeline (§4.1 of
// the paper): as an endorser it simulates transaction proposals against its
// world state and signs the result; as a committer it validates ordered
// blocks (endorsement signatures, endorsement policy, MVCC read conflicts)
// and applies the surviving writes.
package peer

import (
	"bytes"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"

	"repro/internal/chaincode"
	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/statedb"
)

var (
	// ErrProposalMismatch is returned when endorsers disagree on a
	// proposal's simulation result.
	ErrProposalMismatch = errors.New("peer: endorsers produced divergent results")
)

// PolicyProvider supplies the endorsement policy for a chaincode at
// validation time.
type PolicyProvider interface {
	PolicyFor(chaincodeName string) *endorsement.Policy
}

// VerifierProvider supplies the current MSP verifier for the network. It is
// an indirection rather than a fixed *msp.Verifier because organizations
// can be added to a network after its peers are created.
type VerifierProvider interface {
	Verifier() *msp.Verifier
}

// ProposalResponse is an endorser's reply to a transaction proposal.
type ProposalResponse struct {
	Response    []byte
	RWSet       ledger.RWSet
	Event       *ledger.ChaincodeEvent
	Endorsement ledger.Endorsement
}

// Peer is one node of a network.
type Peer struct {
	name     string
	identity *msp.Identity

	mu     sync.Mutex // serializes block commits
	state  *statedb.Store
	blocks *ledger.BlockStore

	registry  *chaincode.Registry
	verifiers VerifierProvider
	policies  PolicyProvider
	history   *historyIndex
}

// New creates a peer. The registry is shared chaincode logic; verifiers
// supplies the local network's organization roots; policies supplies
// per-chaincode endorsement policies for commit-time validation.
func New(identity *msp.Identity, registry *chaincode.Registry, verifiers VerifierProvider, policies PolicyProvider) *Peer {
	return &Peer{
		name:      identity.Name,
		identity:  identity,
		state:     statedb.NewStore(),
		blocks:    ledger.NewBlockStore(),
		registry:  registry,
		verifiers: verifiers,
		policies:  policies,
		history:   newHistoryIndex(),
	}
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// OrgID returns the peer's organization.
func (p *Peer) OrgID() string { return p.identity.OrgID }

// Identity returns the peer's MSP identity.
func (p *Peer) Identity() *msp.Identity { return p.identity }

// State exposes the peer's world state for read-only inspection in tests
// and tooling.
func (p *Peer) State() *statedb.Store { return p.state }

// Blocks exposes the peer's block store.
func (p *Peer) Blocks() *ledger.BlockStore { return p.blocks }

// Endorse simulates the proposal and signs the canonical transaction
// payload derived from it (Fig. 2 step 6-7 happen inside the invoked
// chaincode; the endorsement signature is this peer's attestation of the
// simulation outcome).
func (p *Peer) Endorse(inv chaincode.Invocation) (*ProposalResponse, error) {
	res, err := chaincode.Simulate(p.registry, p.state, inv)
	if err != nil {
		return nil, fmt.Errorf("peer %s: simulate %s.%s: %w", p.name, inv.Chaincode, inv.Function, err)
	}
	tx := BuildTransaction(inv, res)
	sig, err := p.identity.Sign(tx.SignedPayload())
	if err != nil {
		return nil, fmt.Errorf("peer %s: sign endorsement: %w", p.name, err)
	}
	return &ProposalResponse{
		Response: res.Response,
		RWSet:    res.RWSet,
		Event:    res.Event,
		Endorsement: ledger.Endorsement{
			PeerName:  p.name,
			OrgID:     p.identity.OrgID,
			CertPEM:   p.identity.CertPEM(),
			Signature: sig,
		},
	}, nil
}

// Query simulates a read-only invocation and returns its response without
// producing a transaction.
func (p *Peer) Query(inv chaincode.Invocation) ([]byte, error) {
	inv.ReadOnly = true
	res, err := chaincode.Simulate(p.registry, p.state, inv)
	if err != nil {
		return nil, fmt.Errorf("peer %s: query %s.%s: %w", p.name, inv.Chaincode, inv.Function, err)
	}
	return res.Response, nil
}

// BuildTransaction assembles the canonical transaction from a proposal and
// one endorser's simulation result. Every endorser and the client construct
// the same bytes, which is what makes the endorsement signatures
// comparable.
func BuildTransaction(inv chaincode.Invocation, res *chaincode.SimResult) *ledger.Transaction {
	return &ledger.Transaction{
		ID:          inv.TxID,
		Chaincode:   inv.Chaincode,
		Function:    inv.Function,
		Args:        inv.Args,
		CreatorCert: inv.CreatorCert,
		RWSet:       res.RWSet,
		Response:    res.Response,
		Event:       res.Event,
		UnixNano:    uint64(inv.Timestamp.UnixNano()),
		InteropKey:  inv.InteropKey,
	}
}

// AssembleTransaction merges proposal responses from several endorsers into
// a single endorsed transaction, verifying that all endorsers simulated
// identical results.
func AssembleTransaction(inv chaincode.Invocation, responses []*ProposalResponse) (*ledger.Transaction, error) {
	if len(responses) == 0 {
		return nil, errors.New("peer: no proposal responses")
	}
	first := responses[0]
	tx := BuildTransaction(inv, &chaincode.SimResult{
		Response: first.Response,
		RWSet:    first.RWSet,
		Event:    first.Event,
	})
	payload := tx.SignedPayload()
	for _, r := range responses {
		other := BuildTransaction(inv, &chaincode.SimResult{
			Response: r.Response,
			RWSet:    r.RWSet,
			Event:    r.Event,
		})
		if !bytes.Equal(payload, other.SignedPayload()) {
			return nil, ErrProposalMismatch
		}
		tx.Endorsements = append(tx.Endorsements, r.Endorsement)
	}
	return tx, nil
}

// CommitBlock validates every transaction in the block and applies the
// writes of the valid ones. Transactions are validated in order, so a
// transaction that reads a key written earlier in the same block is
// correctly invalidated (standard MVCC semantics).
func (p *Peer) CommitBlock(block *ledger.Block) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Exactly-once guard inside the block: two relays racing the same
	// logical invoke can land both copies in one batch, where the chain
	// index (which only sees committed blocks) cannot catch the second.
	seenIDs := make(map[string]struct{})
	seenKeys := make(map[string]struct{})
	for txNum, tx := range block.Transactions {
		if p.isDuplicate(tx, seenIDs, seenKeys) {
			tx.Validation = ledger.Duplicate
			continue
		}
		tx.Validation = p.validate(tx)
		if tx.Validation != ledger.Valid {
			continue
		}
		seenIDs[tx.ID] = struct{}{}
		if tx.InteropKey != "" {
			seenKeys[tx.InteropKey] = struct{}{}
		}
		p.state.ApplyWrites(tx.RWSet.StateWrites(),
			statedb.Version{BlockNum: block.Number, TxNum: uint64(txNum)})
	}
	if err := p.blocks.Append(block); err != nil {
		return fmt.Errorf("peer %s: append block %d: %w", p.name, block.Number, err)
	}
	p.history.record(block)
	return nil
}

// isDuplicate reports whether a transaction with the same ID or the same
// interop request key already committed as Valid — on the chain, or earlier
// in the block being committed. Only valid commits count: a transaction
// that failed validation may legitimately be resubmitted under the same ID
// (the relay retry path), and rejecting the retry as a duplicate of a
// no-effect attempt would wedge it forever.
func (p *Peer) isDuplicate(tx *ledger.Transaction, seenIDs, seenKeys map[string]struct{}) bool {
	if _, ok := seenIDs[tx.ID]; ok {
		return true
	}
	if p.blocks.HasValidTx(tx.ID) {
		return true
	}
	if tx.InteropKey != "" {
		if _, ok := seenKeys[tx.InteropKey]; ok {
			return true
		}
		if _, err := p.blocks.TxByInteropKey(tx.InteropKey); err == nil {
			return true
		}
	}
	return false
}

// validate applies the three commit-time checks: endorsement signature
// authenticity, endorsement policy satisfaction, and MVCC read freshness.
func (p *Peer) validate(tx *ledger.Transaction) ledger.ValidationCode {
	payload := tx.SignedPayload()
	verifier := p.verifiers.Verifier()
	signers := make([]endorsement.Principal, 0, len(tx.Endorsements))
	for i := range tx.Endorsements {
		en := &tx.Endorsements[i]
		cert, err := msp.ParseCertPEM(en.CertPEM)
		if err != nil {
			return ledger.BadSignature
		}
		info, err := verifier.Verify(cert)
		if err != nil {
			return ledger.BadSignature
		}
		pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
		if !ok {
			return ledger.BadSignature
		}
		if err := cryptoutil.Verify(pub, payload, en.Signature); err != nil {
			return ledger.BadSignature
		}
		// Use the certificate contents, not the self-declared fields, as
		// the authoritative principal.
		signers = append(signers, endorsement.Principal{OrgID: info.OrgID, Role: info.Role})
	}
	policy := p.policies.PolicyFor(tx.Chaincode)
	if policy == nil || !policy.Satisfied(signers) {
		return ledger.EndorsementFailure
	}
	for _, r := range tx.RWSet.Reads {
		ver, exists := p.state.Version(r.Key)
		if exists != r.Exists || (exists && ver != r.Version) {
			return ledger.MVCCConflict
		}
	}
	return ledger.Valid
}
