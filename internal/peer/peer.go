// Package peer implements the peer node of the simulated platform. A peer
// plays two roles from Fabric's execute-order-validate pipeline (§4.1 of
// the paper): as an endorser it simulates transaction proposals against its
// world state and signs the result; as a committer it validates ordered
// blocks (endorsement signatures, endorsement policy, MVCC read conflicts)
// and applies the surviving writes.
//
// Commitment has two interchangeable engines. The serial committer walks
// the block transaction by transaction — the reference semantics. With
// SetCommitterWorkers(n > 1) the parallel committer takes over multi-
// transaction blocks in three stages: endorsement signature and policy
// checks run concurrently on a bounded worker pool; a serial pass then
// validates duplicates and MVCC reads against a block-local overlay and
// levels the survivors by write-write conflicts on their RWSet's
// namespaced keys (a transaction's level is one past the deepest earlier
// writer of any key it writes); finally each level's write sets apply
// concurrently — different levels in order, so dependent writes never
// race. Validation codes, version stamps and resulting world state are
// identical to the serial committer's by construction (the property suite
// in parallel_property_test.go holds the two engines to byte equality),
// and workers <= 1 is the serial-fallback knob.
package peer

import (
	"bytes"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/chaincode"
	"repro/internal/cryptoutil"
	"repro/internal/endorsement"
	"repro/internal/ledger"
	"repro/internal/msp"
	"repro/internal/statedb"
)

var (
	// ErrProposalMismatch is returned when endorsers disagree on a
	// proposal's simulation result.
	ErrProposalMismatch = errors.New("peer: endorsers produced divergent results")
)

// PolicyProvider supplies the endorsement policy for a chaincode at
// validation time.
type PolicyProvider interface {
	PolicyFor(chaincodeName string) *endorsement.Policy
}

// VerifierProvider supplies the current MSP verifier for the network. It is
// an indirection rather than a fixed *msp.Verifier because organizations
// can be added to a network after its peers are created.
type VerifierProvider interface {
	Verifier() *msp.Verifier
}

// ProposalResponse is an endorser's reply to a transaction proposal.
type ProposalResponse struct {
	Response    []byte
	RWSet       ledger.RWSet
	Event       *ledger.ChaincodeEvent
	Endorsement ledger.Endorsement
}

// Peer is one node of a network.
type Peer struct {
	name     string
	identity *msp.Identity

	mu     sync.Mutex // serializes block commits
	state  *statedb.Store
	blocks *ledger.BlockStore

	// workers is the committer worker-pool size. Values <= 1 select the
	// serial committer (the historical one-transaction-at-a-time path);
	// larger values fan signature validation and conflict-free write
	// application across that many goroutines.
	workers int

	registry  *chaincode.Registry
	verifiers VerifierProvider
	policies  PolicyProvider
	history   *historyIndex
}

// New creates a peer. The registry is shared chaincode logic; verifiers
// supplies the local network's organization roots; policies supplies
// per-chaincode endorsement policies for commit-time validation.
func New(identity *msp.Identity, registry *chaincode.Registry, verifiers VerifierProvider, policies PolicyProvider) *Peer {
	return &Peer{
		name:      identity.Name,
		identity:  identity,
		state:     statedb.NewStore(),
		blocks:    ledger.NewBlockStore(),
		registry:  registry,
		verifiers: verifiers,
		policies:  policies,
		history:   newHistoryIndex(),
	}
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.name }

// OrgID returns the peer's organization.
func (p *Peer) OrgID() string { return p.identity.OrgID }

// Identity returns the peer's MSP identity.
func (p *Peer) Identity() *msp.Identity { return p.identity }

// State exposes the peer's world state for read-only inspection in tests
// and tooling.
func (p *Peer) State() *statedb.Store { return p.state }

// Blocks exposes the peer's block store.
func (p *Peer) Blocks() *ledger.BlockStore { return p.blocks }

// Endorse simulates the proposal and signs the canonical transaction
// payload derived from it (Fig. 2 step 6-7 happen inside the invoked
// chaincode; the endorsement signature is this peer's attestation of the
// simulation outcome).
func (p *Peer) Endorse(inv chaincode.Invocation) (*ProposalResponse, error) {
	res, err := chaincode.Simulate(p.registry, p.state, inv)
	if err != nil {
		return nil, fmt.Errorf("peer %s: simulate %s.%s: %w", p.name, inv.Chaincode, inv.Function, err)
	}
	tx := BuildTransaction(inv, res)
	sig, err := p.identity.Sign(tx.SignedPayload())
	if err != nil {
		return nil, fmt.Errorf("peer %s: sign endorsement: %w", p.name, err)
	}
	return &ProposalResponse{
		Response: res.Response,
		RWSet:    res.RWSet,
		Event:    res.Event,
		Endorsement: ledger.Endorsement{
			PeerName:  p.name,
			OrgID:     p.identity.OrgID,
			CertPEM:   p.identity.CertPEM(),
			Signature: sig,
		},
	}, nil
}

// Query simulates a read-only invocation and returns its response without
// producing a transaction.
func (p *Peer) Query(inv chaincode.Invocation) ([]byte, error) {
	res, err := p.QueryRW(inv)
	if err != nil {
		return nil, err
	}
	return res.Response, nil
}

// QueryRW simulates a read-only invocation and returns the full simulation
// result including the read set. The relay driver uses the read set's
// namespaces to key its attestation cache exactly: a cached response only
// needs invalidating when one of the namespaces it actually read is
// written.
func (p *Peer) QueryRW(inv chaincode.Invocation) (*chaincode.SimResult, error) {
	inv.ReadOnly = true
	res, err := chaincode.Simulate(p.registry, p.state, inv)
	if err != nil {
		return nil, fmt.Errorf("peer %s: query %s.%s: %w", p.name, inv.Chaincode, inv.Function, err)
	}
	return res, nil
}

// SetCommitterWorkers sets the committer worker-pool size for subsequent
// CommitBlock calls. n <= 1 selects the serial committer, which reproduces
// the historical behavior exactly; n > 1 validates endorsement signatures
// concurrently and applies non-conflicting write-sets in parallel, with
// results guaranteed identical to the serial path.
func (p *Peer) SetCommitterWorkers(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.workers = n
}

// BuildTransaction assembles the canonical transaction from a proposal and
// one endorser's simulation result. Every endorser and the client construct
// the same bytes, which is what makes the endorsement signatures
// comparable.
func BuildTransaction(inv chaincode.Invocation, res *chaincode.SimResult) *ledger.Transaction {
	return &ledger.Transaction{
		ID:          inv.TxID,
		Chaincode:   inv.Chaincode,
		Function:    inv.Function,
		Args:        inv.Args,
		CreatorCert: inv.CreatorCert,
		RWSet:       res.RWSet,
		Response:    res.Response,
		Event:       res.Event,
		UnixNano:    uint64(inv.Timestamp.UnixNano()),
		InteropKey:  inv.InteropKey,
	}
}

// AssembleTransaction merges proposal responses from several endorsers into
// a single endorsed transaction, verifying that all endorsers simulated
// identical results.
func AssembleTransaction(inv chaincode.Invocation, responses []*ProposalResponse) (*ledger.Transaction, error) {
	if len(responses) == 0 {
		return nil, errors.New("peer: no proposal responses")
	}
	first := responses[0]
	tx := BuildTransaction(inv, &chaincode.SimResult{
		Response: first.Response,
		RWSet:    first.RWSet,
		Event:    first.Event,
	})
	payload := tx.SignedPayload()
	for _, r := range responses {
		other := BuildTransaction(inv, &chaincode.SimResult{
			Response: r.Response,
			RWSet:    r.RWSet,
			Event:    r.Event,
		})
		if !bytes.Equal(payload, other.SignedPayload()) {
			return nil, ErrProposalMismatch
		}
		tx.Endorsements = append(tx.Endorsements, r.Endorsement)
	}
	return tx, nil
}

// CommitBlock validates every transaction in the block and applies the
// writes of the valid ones, preserving in-order MVCC semantics: a
// transaction that reads a key written earlier in the same block is
// invalidated exactly as if the block had been processed one transaction
// at a time. With SetCommitterWorkers(n>1) the expensive parts run
// concurrently — signature verification across transactions, and write-set
// application across transactions that touch disjoint keys — while the
// validation verdicts stay identical to the serial committer's.
func (p *Peer) CommitBlock(block *ledger.Block) error {
	return p.commitWith(block, nil)
}

// CommitBlockPinned is CommitBlock with endorsement checks pinned to an
// explicit verifier instead of the network's current one. Catch-up replay
// uses it to validate each historical block against the organization set
// of its committing era: a block endorsed by a since-removed org must keep
// its original verdicts when a fresh peer replays the chain, or the
// replica would diverge from every peer that committed the block live.
func (p *Peer) CommitBlockPinned(block *ledger.Block, verifier *msp.Verifier) error {
	return p.commitWith(block, verifier)
}

// commitWith commits a block using the given verifier for endorsement
// checks; nil selects the network's current verifier.
func (p *Peer) commitWith(block *ledger.Block, verifier *msp.Verifier) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if verifier == nil {
		verifier = p.verifiers.Verifier()
	}
	if p.workers > 1 && len(block.Transactions) > 1 {
		p.commitParallel(block, p.workers, verifier)
	} else {
		p.commitSerial(block, verifier)
	}
	if err := p.blocks.Append(block); err != nil {
		return fmt.Errorf("peer %s: append block %d: %w", p.name, block.Number, err)
	}
	p.history.record(block)
	return nil
}

// commitSerial is the historical one-transaction-at-a-time commit path,
// kept verbatim as the reference semantics and the serial-fallback mode.
func (p *Peer) commitSerial(block *ledger.Block, verifier *msp.Verifier) {
	// Exactly-once guard inside the block: two relays racing the same
	// logical invoke can land both copies in one batch, where the chain
	// index (which only sees committed blocks) cannot catch the second.
	seenIDs := make(map[string]struct{})
	seenKeys := make(map[string]struct{})
	for txNum, tx := range block.Transactions {
		if p.isDuplicate(tx, seenIDs, seenKeys) {
			tx.Validation = ledger.Duplicate
			continue
		}
		tx.Validation = p.validate(tx, verifier)
		if tx.Validation != ledger.Valid {
			continue
		}
		seenIDs[tx.ID] = struct{}{}
		if tx.InteropKey != "" {
			seenKeys[tx.InteropKey] = struct{}{}
		}
		p.state.ApplyWrites(tx.RWSet.StateWrites(),
			statedb.Version{BlockNum: block.Number, TxNum: uint64(txNum)})
	}
}

// overlayEntry mirrors what statedb.Version would report for a key after
// the writes of the earlier valid transactions in the block had been
// applied, without actually mutating state until scheduling is done.
type overlayEntry struct {
	exists  bool
	version statedb.Version
}

// nsKey joins a namespace and key for map indexing; U+0000 cannot appear in
// namespace names, so the join is unambiguous.
func nsKey(ns, key string) string { return ns + "\x00" + key }

// commitParallel is the concurrent commit path. It runs three stages:
//
//  1. Endorsement validation (certificate chains, ECDSA signatures,
//     policy) is position-independent, so it fans out across the worker
//     pool — this is where the commit path burns most of its CPU.
//  2. A serial in-order pass performs duplicate detection and MVCC read
//     validation against an overlay that emulates the earlier valid
//     transactions' writes, guaranteeing verdicts identical to the serial
//     committer. The same pass levels valid transactions by write-write
//     conflict: a transaction lands one level after the latest earlier
//     transaction writing any of the same namespaced keys.
//  3. Write-sets are applied level by level; transactions within a level
//     touch disjoint keys and apply concurrently.
func (p *Peer) commitParallel(block *ledger.Block, workers int, verifier *msp.Verifier) {
	txs := block.Transactions
	if workers > len(txs) {
		workers = len(txs)
	}

	// Stage 1: concurrent signature/endorsement validation.
	endorseCode := make([]ledger.ValidationCode, len(txs))
	var cursor int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= len(txs) {
					return
				}
				endorseCode[i] = p.validateEndorsements(txs[i], verifier)
			}
		}()
	}
	wg.Wait()

	// Stage 2: serial in-order duplicate + MVCC pass, plus conflict
	// leveling of the surviving writes.
	overlay := make(map[string]overlayEntry)
	keyLevel := make(map[string]int)
	var levels [][]int
	seenIDs := make(map[string]struct{})
	seenKeys := make(map[string]struct{})
	for txNum, tx := range txs {
		if p.isDuplicate(tx, seenIDs, seenKeys) {
			tx.Validation = ledger.Duplicate
			continue
		}
		if endorseCode[txNum] != ledger.Valid {
			tx.Validation = endorseCode[txNum]
			continue
		}
		if !p.readsCurrent(tx, overlay) {
			tx.Validation = ledger.MVCCConflict
			continue
		}
		tx.Validation = ledger.Valid
		seenIDs[tx.ID] = struct{}{}
		if tx.InteropKey != "" {
			seenKeys[tx.InteropKey] = struct{}{}
		}
		ver := statedb.Version{BlockNum: block.Number, TxNum: uint64(txNum)}
		level := 0
		for i := range tx.RWSet.Writes {
			w := &tx.RWSet.Writes[i]
			nk := nsKey(w.Namespace, w.Key)
			if l := keyLevel[nk]; l > level {
				level = l
			}
			overlay[nk] = overlayEntry{exists: !w.IsDelete, version: ver}
		}
		level++
		for i := range tx.RWSet.Writes {
			keyLevel[nsKey(tx.RWSet.Writes[i].Namespace, tx.RWSet.Writes[i].Key)] = level
		}
		for len(levels) < level {
			levels = append(levels, nil)
		}
		levels[level-1] = append(levels[level-1], txNum)
	}

	// Stage 3: apply write-sets level by level; within a level all
	// write-sets are key-disjoint by construction.
	sem := make(chan struct{}, workers)
	for _, level := range levels {
		if len(level) == 1 {
			txNum := level[0]
			p.state.ApplyWrites(txs[txNum].RWSet.StateWrites(),
				statedb.Version{BlockNum: block.Number, TxNum: uint64(txNum)})
			continue
		}
		var awg sync.WaitGroup
		for _, txNum := range level {
			awg.Add(1)
			sem <- struct{}{}
			go func(txNum int) {
				defer awg.Done()
				p.state.ApplyWrites(txs[txNum].RWSet.StateWrites(),
					statedb.Version{BlockNum: block.Number, TxNum: uint64(txNum)})
				<-sem
			}(txNum)
		}
		awg.Wait()
	}
}

// readsCurrent performs the MVCC read-freshness check for the parallel
// committer: each read must observe the same existence and version it saw
// at simulation time, where "current" means committed state plus the
// overlay of earlier in-block valid writes.
func (p *Peer) readsCurrent(tx *ledger.Transaction, overlay map[string]overlayEntry) bool {
	for _, r := range tx.RWSet.Reads {
		if e, ok := overlay[nsKey(r.Namespace, r.Key)]; ok {
			if e.exists != r.Exists || (e.exists && e.version != r.Version) {
				return false
			}
			continue
		}
		ver, exists := p.state.Version(r.Namespace, r.Key)
		if exists != r.Exists || (exists && ver != r.Version) {
			return false
		}
	}
	return true
}

// isDuplicate reports whether a transaction with the same ID or the same
// interop request key already committed as Valid — on the chain, or earlier
// in the block being committed. Only valid commits count: a transaction
// that failed validation may legitimately be resubmitted under the same ID
// (the relay retry path), and rejecting the retry as a duplicate of a
// no-effect attempt would wedge it forever.
func (p *Peer) isDuplicate(tx *ledger.Transaction, seenIDs, seenKeys map[string]struct{}) bool {
	if _, ok := seenIDs[tx.ID]; ok {
		return true
	}
	if p.blocks.HasValidTx(tx.ID) {
		return true
	}
	if tx.InteropKey != "" {
		if _, ok := seenKeys[tx.InteropKey]; ok {
			return true
		}
		if _, err := p.blocks.TxByInteropKey(tx.InteropKey); err == nil {
			return true
		}
	}
	return false
}

// validate applies the three commit-time checks: endorsement signature
// authenticity, endorsement policy satisfaction, and MVCC read freshness.
func (p *Peer) validate(tx *ledger.Transaction, verifier *msp.Verifier) ledger.ValidationCode {
	if code := p.validateEndorsements(tx, verifier); code != ledger.Valid {
		return code
	}
	for _, r := range tx.RWSet.Reads {
		ver, exists := p.state.Version(r.Namespace, r.Key)
		if exists != r.Exists || (exists && ver != r.Version) {
			return ledger.MVCCConflict
		}
	}
	return ledger.Valid
}

// validateEndorsements performs the position-independent commit-time
// checks: endorsement signature authenticity and endorsement policy
// satisfaction. It never touches world state, so the parallel committer
// runs it concurrently across a block's transactions.
func (p *Peer) validateEndorsements(tx *ledger.Transaction, verifier *msp.Verifier) ledger.ValidationCode {
	payload := tx.SignedPayload()
	signers := make([]endorsement.Principal, 0, len(tx.Endorsements))
	for i := range tx.Endorsements {
		en := &tx.Endorsements[i]
		cert, err := msp.ParseCertPEM(en.CertPEM)
		if err != nil {
			return ledger.BadSignature
		}
		info, err := verifier.Verify(cert)
		if err != nil {
			return ledger.BadSignature
		}
		pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
		if !ok {
			return ledger.BadSignature
		}
		if err := cryptoutil.Verify(pub, payload, en.Signature); err != nil {
			return ledger.BadSignature
		}
		// Use the certificate contents, not the self-declared fields, as
		// the authoritative principal.
		signers = append(signers, endorsement.Principal{OrgID: info.OrgID, Role: info.Role})
	}
	policy := p.policies.PolicyFor(tx.Chaincode)
	if policy == nil || !policy.Satisfied(signers) {
		return ledger.EndorsementFailure
	}
	return ledger.Valid
}
