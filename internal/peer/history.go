package peer

import (
	"sync"

	"repro/internal/ledger"
)

// KeyChange is one committed modification of a key, in commit order — the
// audit trail enterprises require of permissioned ledgers (the paper's
// intro lists auditability among the requirements that motivated
// permissioned networks).
type KeyChange struct {
	TxID     string
	BlockNum uint64
	TxNum    uint64
	Value    []byte
	IsDelete bool
}

// historyIndex accumulates per-key change logs as blocks commit.
type historyIndex struct {
	mu      sync.RWMutex
	changes map[string][]KeyChange
}

func newHistoryIndex() *historyIndex {
	return &historyIndex{changes: make(map[string][]KeyChange)}
}

func (h *historyIndex) record(block *ledger.Block) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for txNum, tx := range block.Transactions {
		if tx.Validation != ledger.Valid {
			continue
		}
		for _, w := range tx.RWSet.Writes {
			val := make([]byte, len(w.Value))
			copy(val, w.Value)
			nk := nsKey(w.Namespace, w.Key)
			h.changes[nk] = append(h.changes[nk], KeyChange{
				TxID:     tx.ID,
				BlockNum: block.Number,
				TxNum:    uint64(txNum),
				Value:    val,
				IsDelete: w.IsDelete,
			})
		}
	}
}

func (h *historyIndex) forKey(key string) []KeyChange {
	h.mu.RLock()
	defer h.mu.RUnlock()
	src := h.changes[key]
	out := make([]KeyChange, len(src))
	for i, c := range src {
		val := make([]byte, len(c.Value))
		copy(val, c.Value)
		c.Value = val
		out[i] = c
	}
	return out
}

// KeyHistory returns every committed change to a namespaced key on this
// peer, oldest first. Values are copies.
func (p *Peer) KeyHistory(ns, key string) []KeyChange {
	return p.history.forKey(nsKey(ns, key))
}
