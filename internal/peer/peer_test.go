package peer

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/chaincode"
	"repro/internal/endorsement"
	"repro/internal/ledger"
	"repro/internal/msp"
)

// fixedProviders supplies a static verifier and a single policy for unit
// tests, standing in for the network object.
type fixedProviders struct {
	verifier *msp.Verifier
	policy   *endorsement.Policy
}

func (f *fixedProviders) Verifier() *msp.Verifier              { return f.verifier }
func (f *fixedProviders) PolicyFor(string) *endorsement.Policy { return f.policy }

func newPeerFixture(t *testing.T, policyExpr string) (*Peer, *msp.CA) {
	t.Helper()
	ca, err := msp.NewCA("org-a")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	id, err := ca.Issue("org-a-peer0", msp.RolePeer)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	verifier, err := msp.NewVerifier(map[string][]byte{"org-a": ca.RootCertPEM()})
	if err != nil {
		t.Fatalf("NewVerifier: %v", err)
	}
	reg := chaincode.NewRegistry()
	reg.Register("kv", chaincode.Func(func(stub chaincode.Stub) ([]byte, error) {
		switch stub.Function() {
		case "put":
			return nil, stub.PutState(string(stub.Args()[0]), stub.Args()[1])
		case "get":
			return stub.GetState(string(stub.Args()[0]))
		case "del":
			return nil, stub.DelState(string(stub.Args()[0]))
		default:
			return nil, errors.New("unknown")
		}
	}))
	providers := &fixedProviders{verifier: verifier, policy: endorsement.MustParse(policyExpr)}
	return New(id, reg, providers, providers), ca
}

func inv(fn string, args ...string) chaincode.Invocation {
	byteArgs := make([][]byte, len(args))
	for i, a := range args {
		byteArgs[i] = []byte(a)
	}
	return chaincode.Invocation{
		TxID: "tx-1", Chaincode: "kv", Function: fn, Args: byteArgs,
		Timestamp: time.Unix(1700000000, 0),
	}
}

func TestEndorseProducesValidSignature(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	resp, err := p.Endorse(inv("put", "k", "v"))
	if err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	if resp.Endorsement.PeerName != "org-a-peer0" || resp.Endorsement.OrgID != "org-a" {
		t.Fatalf("endorsement = %+v", resp.Endorsement)
	}
	if len(resp.RWSet.Writes) != 1 {
		t.Fatalf("writes = %+v", resp.RWSet.Writes)
	}
}

func TestEndorseSimulationDoesNotCommit(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	if _, err := p.Endorse(inv("put", "k", "v")); err != nil {
		t.Fatalf("Endorse: %v", err)
	}
	if _, ok := p.State().Get("kv", "k"); ok {
		t.Fatal("endorsement mutated committed state")
	}
}

func TestCommitBlockAppliesValidTx(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	proposal := inv("put", "k", "v")
	resp, _ := p.Endorse(proposal)
	tx, err := AssembleTransaction(proposal, []*ProposalResponse{resp})
	if err != nil {
		t.Fatalf("AssembleTransaction: %v", err)
	}
	block := &ledger.Block{Number: 0, Transactions: []*ledger.Transaction{tx}}
	block.Hash = block.ComputeHash()
	if err := p.CommitBlock(block); err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	if tx.Validation != ledger.Valid {
		t.Fatalf("validation = %v", tx.Validation)
	}
	vv, ok := p.State().Get("kv", "k")
	if !ok || !bytes.Equal(vv.Value, []byte("v")) {
		t.Fatalf("state = %+v, %v", vv, ok)
	}
	if p.Blocks().Height() != 1 {
		t.Fatalf("height = %d", p.Blocks().Height())
	}
}

func TestCommitRejectsUnendorsedTx(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	tx := &ledger.Transaction{
		ID: "tx-naked", Chaincode: "kv", Function: "put",
		RWSet: ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte("v")}}},
	}
	block := &ledger.Block{Number: 0, Transactions: []*ledger.Transaction{tx}}
	block.Hash = block.ComputeHash()
	if err := p.CommitBlock(block); err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	if tx.Validation != ledger.EndorsementFailure {
		t.Fatalf("validation = %v", tx.Validation)
	}
	if _, ok := p.State().Get("kv", "k"); ok {
		t.Fatal("unendorsed write applied")
	}
}

func TestCommitRejectsForeignEndorser(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	// A different CA with the same org name: signature verifies against the
	// cert, but the cert does not chain to the recorded root.
	rogueCA, _ := msp.NewCA("org-a")
	rogueID, _ := rogueCA.Issue("org-a-peer0", msp.RolePeer)

	proposal := inv("put", "k", "v")
	res := &chaincode.SimResult{RWSet: ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte("v")}}}}
	tx := BuildTransaction(proposal, res)
	sig, _ := rogueID.Sign(tx.SignedPayload())
	tx.Endorsements = []ledger.Endorsement{{
		PeerName: "org-a-peer0", OrgID: "org-a", CertPEM: rogueID.CertPEM(), Signature: sig,
	}}
	block := &ledger.Block{Number: 0, Transactions: []*ledger.Transaction{tx}}
	block.Hash = block.ComputeHash()
	if err := p.CommitBlock(block); err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	if tx.Validation != ledger.BadSignature {
		t.Fatalf("validation = %v", tx.Validation)
	}
}

func TestCommitRejectsClientEndorser(t *testing.T) {
	p, ca := newPeerFixture(t, "'org-a.peer'")
	clientID, _ := ca.Issue("sneaky-client", msp.RoleClient)

	proposal := inv("put", "k", "v")
	res := &chaincode.SimResult{RWSet: ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte("v")}}}}
	tx := BuildTransaction(proposal, res)
	sig, _ := clientID.Sign(tx.SignedPayload())
	tx.Endorsements = []ledger.Endorsement{{
		PeerName: "sneaky-client", OrgID: "org-a", CertPEM: clientID.CertPEM(), Signature: sig,
	}}
	block := &ledger.Block{Number: 0, Transactions: []*ledger.Transaction{tx}}
	block.Hash = block.ComputeHash()
	if err := p.CommitBlock(block); err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	// Signature is fine but the peer-only policy is unsatisfied.
	if tx.Validation != ledger.EndorsementFailure {
		t.Fatalf("validation = %v", tx.Validation)
	}
}

func TestIntraBlockMVCCConflict(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")

	// Seed a key.
	seed := inv("put", "k", "v0")
	seed.TxID = "tx-seed"
	resp0, _ := p.Endorse(seed)
	tx0, _ := AssembleTransaction(seed, []*ProposalResponse{resp0})
	b0 := &ledger.Block{Number: 0, Transactions: []*ledger.Transaction{tx0}}
	b0.Hash = b0.ComputeHash()
	_ = p.CommitBlock(b0)

	// tx1 writes k; tx2 read k at the version preceding tx1's write. Both
	// land in the same block, so tx2's MVCC check must fail against tx1's
	// freshly applied write.
	write := inv("put", "k", "v1")
	write.TxID = "tx-write"
	respW, _ := p.Endorse(write)
	txW, _ := AssembleTransaction(write, []*ProposalResponse{respW})

	read := inv("get", "k")
	read.TxID = "tx-read"
	respR, _ := p.Endorse(read)
	txR, _ := AssembleTransaction(read, []*ProposalResponse{respR})

	b1 := &ledger.Block{Number: 1, PrevHash: p.Blocks().TipHash(),
		Transactions: []*ledger.Transaction{txW, txR}}
	b1.Hash = b1.ComputeHash()
	if err := p.CommitBlock(b1); err != nil {
		t.Fatalf("CommitBlock: %v", err)
	}
	if txW.Validation != ledger.Valid {
		t.Fatalf("write tx = %v", txW.Validation)
	}
	// The read tx observed version (0,0); tx-write moved it to (1,0) within
	// the same block, so MVCC must invalidate it.
	if txR.Validation != ledger.MVCCConflict {
		t.Fatalf("read tx = %v, want mvcc-conflict", txR.Validation)
	}
}

func TestAssembleRejectsDivergentResponses(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	proposal := inv("put", "k", "v")
	resp1, _ := p.Endorse(proposal)
	resp2, _ := p.Endorse(proposal)
	// Corrupt the second response.
	resp2.Response = []byte("divergent")
	if _, err := AssembleTransaction(proposal, []*ProposalResponse{resp1, resp2}); !errors.Is(err, ErrProposalMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestAssembleEmptyResponses(t *testing.T) {
	if _, err := AssembleTransaction(inv("put", "k", "v"), nil); err == nil {
		t.Fatal("empty responses accepted")
	}
}

func TestQueryReadOnly(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	// put through commit first
	proposal := inv("put", "k", "v")
	resp, _ := p.Endorse(proposal)
	tx, _ := AssembleTransaction(proposal, []*ProposalResponse{resp})
	b := &ledger.Block{Number: 0, Transactions: []*ledger.Transaction{tx}}
	b.Hash = b.ComputeHash()
	_ = p.CommitBlock(b)

	got, err := p.Query(inv("get", "k"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !bytes.Equal(got, []byte("v")) {
		t.Fatalf("query = %q", got)
	}
	// Writes in a query must fail.
	if _, err := p.Query(inv("put", "k2", "v2")); err == nil {
		t.Fatal("query performed a write")
	}
}

func TestPeerAccessors(t *testing.T) {
	p, _ := newPeerFixture(t, "'org-a'")
	if p.Name() != "org-a-peer0" || p.OrgID() != "org-a" {
		t.Fatalf("accessors: %s %s", p.Name(), p.OrgID())
	}
	if p.Identity() == nil || p.State() == nil || p.Blocks() == nil {
		t.Fatal("nil accessors")
	}
	if _, ok := p.State().Get("kv", "nothing"); ok {
		t.Fatal("empty state returned a value")
	}
}
