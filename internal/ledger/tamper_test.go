package ledger

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildChain commits n blocks of simple transactions.
func buildChain(t *testing.T, n int) *BlockStore {
	t.Helper()
	s := NewBlockStore()
	for i := 0; i < n; i++ {
		b := &Block{
			Number:   uint64(i),
			PrevHash: s.TipHash(),
			Transactions: []*Transaction{
				{
					ID:        fmt.Sprintf("tx-%d-a", i),
					Chaincode: "cc",
					Function:  "put",
					Args:      [][]byte{[]byte(fmt.Sprintf("k%d", i))},
					Response:  []byte("ok"),
					RWSet: RWSet{Writes: []KVWrite{
						{Key: fmt.Sprintf("k%d", i), Value: []byte(fmt.Sprintf("v%d", i))},
					}},
				},
				{
					ID:        fmt.Sprintf("tx-%d-b", i),
					Chaincode: "cc",
					Function:  "del",
					RWSet:     RWSet{Writes: []KVWrite{{Key: "gone", IsDelete: true}}},
				},
			},
		}
		if err := s.Append(b); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := s.VerifyChain(); err != nil {
		t.Fatalf("fresh chain invalid: %v", err)
	}
	return s
}

// TestRandomTamperingAlwaysDetected applies random single-field mutations
// to committed transactions and checks VerifyChain catches every one —
// the immutability property the trust argument rests on.
func TestRandomTamperingAlwaysDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mutations := []struct {
		name   string
		mutate func(tx *Transaction, rng *rand.Rand)
	}{
		{"function", func(tx *Transaction, _ *rand.Rand) { tx.Function += "x" }},
		{"id", func(tx *Transaction, _ *rand.Rand) { tx.ID += "x" }},
		{"response", func(tx *Transaction, _ *rand.Rand) { tx.Response = append(tx.Response, 'x') }},
		{"arg", func(tx *Transaction, _ *rand.Rand) {
			if len(tx.Args) > 0 {
				tx.Args[0] = append(tx.Args[0], 'x')
			} else {
				tx.Args = [][]byte{[]byte("x")}
			}
		}},
		{"write-value", func(tx *Transaction, _ *rand.Rand) {
			tx.RWSet.Writes[0].Value = append(tx.RWSet.Writes[0].Value, 'x')
		}},
		{"write-key", func(tx *Transaction, _ *rand.Rand) {
			tx.RWSet.Writes[0].Key += "x"
		}},
		{"delete-flag", func(tx *Transaction, _ *rand.Rand) {
			tx.RWSet.Writes[0].IsDelete = !tx.RWSet.Writes[0].IsDelete
		}},
		{"creator", func(tx *Transaction, _ *rand.Rand) {
			tx.CreatorCert = append(tx.CreatorCert, 'x')
		}},
	}
	for _, m := range mutations {
		for trial := 0; trial < 5; trial++ {
			s := buildChain(t, 8)
			blockNum := uint64(rng.Intn(8))
			b, err := s.Block(blockNum)
			if err != nil {
				t.Fatalf("Block: %v", err)
			}
			tx := b.Transactions[rng.Intn(len(b.Transactions))]
			m.mutate(tx, rng)
			if err := s.VerifyChain(); err == nil {
				t.Fatalf("mutation %q on block %d went undetected", m.name, blockNum)
			}
		}
	}
}

// TestValidationCodeMutationNotDetected documents that the validation code
// is intentionally outside the hash: it is assigned post-ordering by each
// committer, not agreed by consensus.
func TestValidationCodeMutationNotDetected(t *testing.T) {
	s := buildChain(t, 3)
	b, _ := s.Block(1)
	b.Transactions[0].Validation = MVCCConflict
	if err := s.VerifyChain(); err != nil {
		t.Fatalf("validation code is hashed but must not be: %v", err)
	}
}

// TestBlockSwapDetected moves a whole block's transactions to another
// block.
func TestBlockSwapDetected(t *testing.T) {
	s := buildChain(t, 4)
	b1, _ := s.Block(1)
	b2, _ := s.Block(2)
	b1.Transactions, b2.Transactions = b2.Transactions, b1.Transactions
	if err := s.VerifyChain(); err == nil {
		t.Fatal("transaction swap across blocks went undetected")
	}
}
