package ledger

import (
	"fmt"

	"repro/internal/cryptoutil"
	"repro/internal/wire"
)

// ValidationCode records the committer's verdict on a transaction.
type ValidationCode int

const (
	// Valid means the transaction passed endorsement-policy and MVCC checks
	// and its writes were applied.
	Valid ValidationCode = iota + 1
	// MVCCConflict means a read version moved between simulation and
	// commit; the transaction was skipped.
	MVCCConflict
	// EndorsementFailure means the endorsement policy was not satisfied.
	EndorsementFailure
	// BadSignature means an endorsement signature did not verify.
	BadSignature
	// Duplicate means a transaction with the same ID (or the same interop
	// request key) was already committed as valid; the transaction was
	// skipped so the original commit remains the only effect. This is the
	// ledger-level anchor of cross-relay exactly-once: two relay processes
	// fronting the same network can each submit the same logical invoke,
	// but only the first commit applies.
	Duplicate
)

// String returns the validation code name.
func (c ValidationCode) String() string {
	switch c {
	case Valid:
		return "valid"
	case MVCCConflict:
		return "mvcc-conflict"
	case EndorsementFailure:
		return "endorsement-failure"
	case BadSignature:
		return "bad-signature"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("validation(%d)", int(c))
	}
}

// Endorsement is one peer's signature over a transaction's simulated
// results.
type Endorsement struct {
	PeerName  string
	OrgID     string
	CertPEM   []byte
	Signature []byte // over the transaction's SignedPayload
}

// ChaincodeEvent is an event emitted during simulation, delivered to
// listeners after the transaction commits as Valid.
type ChaincodeEvent struct {
	Chaincode string
	Name      string
	Payload   []byte
	// UnixNano is the commit time of the transaction that emitted the
	// event, stamped at block delivery. It is not part of the endorsed
	// payload (events are signed as chaincode/name/payload, which every
	// endorser reproduces identically); it exists so subscribers — local
	// and cross-network — can order events from different networks.
	UnixNano uint64
}

// Transaction is an ordered, endorsed chaincode invocation.
type Transaction struct {
	ID           string
	Chaincode    string
	Function     string
	Args         [][]byte
	CreatorCert  []byte // PEM of the submitting client
	RWSet        RWSet
	Response     []byte // chaincode return value from simulation
	Event        *ChaincodeEvent
	Endorsements []Endorsement
	UnixNano     uint64

	// InteropKey is the cross-network exactly-once identity of the interop
	// request that produced this transaction (wire.Query.InteropKey), empty
	// for local transactions. It is part of the signed payload, so a relay
	// cannot re-bind a committed outcome to a different request, and it is
	// indexed by the BlockStore so any relay fronting this network can
	// recover the committed response for a request its sibling executed.
	InteropKey string

	// ProofBundle is the sealed attestation proof (proof.Sealed, marshaled)
	// the relay built for an interop invoke, persisted with the transaction
	// so a replay serves the original proof verbatim instead of re-attesting
	// under whatever peer set exists at replay time. Empty for local
	// transactions. Like Validation it is not part of the signed payload:
	// the proof attests the committed response, it does not alter it, and
	// endorsers sign before the relay attaches it.
	ProofBundle []byte

	// Validation is assigned by the committer; it is not part of the signed
	// payload.
	Validation ValidationCode
}

// SignedPayload returns the canonical bytes that endorsers sign: the
// proposal identity plus the simulation outcome. Any post-endorsement
// mutation of the function, arguments, read-write set or response
// invalidates every endorsement.
func (tx *Transaction) SignedPayload() []byte {
	e := wire.NewEncoder(256)
	e.String(1, tx.ID)
	e.String(2, tx.Chaincode)
	e.String(3, tx.Function)
	for _, a := range tx.Args {
		e.Message(4, a)
	}
	e.BytesField(5, tx.CreatorCert)
	e.BytesField(6, tx.RWSet.Marshal())
	e.BytesField(7, tx.Response)
	if tx.Event != nil {
		ev := wire.NewEncoder(32 + len(tx.Event.Payload))
		ev.String(1, tx.Event.Chaincode)
		ev.String(2, tx.Event.Name)
		ev.BytesField(3, tx.Event.Payload)
		e.Message(8, ev.Bytes())
	}
	// Empty keys are omitted by the encoder, so local transactions keep the
	// exact payload bytes they had before interop metadata existed.
	e.String(9, tx.InteropKey)
	return e.Bytes()
}

// Digest returns the SHA-256 digest of the signed payload.
func (tx *Transaction) Digest() []byte {
	return cryptoutil.Digest(tx.SignedPayload())
}

// Marshal encodes the full transaction, including endorsements, for block
// storage.
func (tx *Transaction) Marshal() []byte {
	e := wire.NewEncoder(512)
	e.BytesField(1, tx.SignedPayload())
	for i := range tx.Endorsements {
		en := &tx.Endorsements[i]
		ee := wire.NewEncoder(128)
		ee.String(1, en.PeerName)
		ee.String(2, en.OrgID)
		ee.BytesField(3, en.CertPEM)
		ee.BytesField(4, en.Signature)
		e.Message(2, ee.Bytes())
	}
	e.Uint(3, tx.UnixNano)
	e.Uint(4, uint64(tx.Validation))
	e.BytesField(5, tx.ProofBundle)
	return e.Bytes()
}
