package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cryptoutil"
)

var (
	// ErrNotFound is returned when a block or transaction does not exist.
	ErrNotFound = errors.New("ledger: not found")
	// ErrBrokenChain is returned when a block's PrevHash does not match the
	// chain tip.
	ErrBrokenChain = errors.New("ledger: broken hash chain")
)

// Block is an ordered batch of transactions linked to its predecessor by
// hash.
type Block struct {
	Number       uint64
	PrevHash     []byte
	Transactions []*Transaction
	Hash         []byte
}

// ComputeHash derives the block hash from the block number, the previous
// hash and every transaction digest.
func (b *Block) ComputeHash() []byte {
	var num [8]byte
	binary.BigEndian.PutUint64(num[:], b.Number)
	parts := make([][]byte, 0, 2+len(b.Transactions))
	parts = append(parts, num[:], b.PrevHash)
	for _, tx := range b.Transactions {
		parts = append(parts, tx.Digest())
	}
	return cryptoutil.Digest(parts...)
}

// BlockStore is the append-only hash-chained chain of blocks plus the
// indexes needed for transaction lookup.
type BlockStore struct {
	mu     sync.RWMutex
	blocks []*Block
	byTxID map[string]txLocation
	// byInterop locates the first transaction committed as Valid for each
	// interop request key — the ledger-level replay index redundant relays
	// consult to serve a duplicate of an invoke a sibling relay committed.
	byInterop map[string]txLocation
}

type txLocation struct {
	blockNum uint64
	txIndex  int
}

// NewBlockStore returns an empty block store. The first appended block must
// have Number 0 and an empty PrevHash.
func NewBlockStore() *BlockStore {
	return &BlockStore{
		byTxID:    make(map[string]txLocation),
		byInterop: make(map[string]txLocation),
	}
}

// Height returns the number of blocks in the chain.
func (s *BlockStore) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.blocks))
}

// TipHash returns the hash of the latest block, or nil for an empty chain.
func (s *BlockStore) TipHash() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[len(s.blocks)-1].Hash
}

// Append validates the chain linkage, computes the block hash and appends
// the block.
func (s *BlockStore) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b.Number != uint64(len(s.blocks)) {
		return fmt.Errorf("%w: block number %d at height %d", ErrBrokenChain, b.Number, len(s.blocks))
	}
	if len(s.blocks) > 0 {
		tip := s.blocks[len(s.blocks)-1]
		if string(b.PrevHash) != string(tip.Hash) {
			return fmt.Errorf("%w: prev hash mismatch at block %d", ErrBrokenChain, b.Number)
		}
	} else if len(b.PrevHash) != 0 {
		return fmt.Errorf("%w: genesis block with non-empty prev hash", ErrBrokenChain)
	}
	b.Hash = b.ComputeHash()
	s.blocks = append(s.blocks, b)
	for i, tx := range b.Transactions {
		loc := txLocation{blockNum: b.Number, txIndex: i}
		// Duplicate TxIDs short-circuit rather than reindex: the first
		// valid commit stays authoritative, so a later duplicate (which the
		// committer marks Duplicate and skips) can never shadow the
		// transaction whose effects are actually on the ledger. A valid
		// commit does displace an earlier invalid attempt with the same ID
		// — the failed-then-retried case — because lookups want the
		// transaction that took effect.
		if old, ok := s.byTxID[tx.ID]; !ok || (tx.Validation == Valid && s.txAtLocked(old).Validation != Valid) {
			s.byTxID[tx.ID] = loc
		}
		if tx.Validation == Valid && tx.InteropKey != "" {
			if _, ok := s.byInterop[tx.InteropKey]; !ok {
				s.byInterop[tx.InteropKey] = loc
			}
		}
	}
	return nil
}

func (s *BlockStore) txAtLocked(loc txLocation) *Transaction {
	return s.blocks[loc.blockNum].Transactions[loc.txIndex]
}

// Block returns the block at the given height.
func (s *BlockStore) Block(num uint64) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if num >= uint64(len(s.blocks)) {
		return nil, fmt.Errorf("%w: block %d", ErrNotFound, num)
	}
	return s.blocks[num], nil
}

// TxByID returns a committed transaction by its ID.
func (s *BlockStore) TxByID(txID string) (*Transaction, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.byTxID[txID]
	if !ok {
		return nil, fmt.Errorf("%w: tx %s", ErrNotFound, txID)
	}
	return s.blocks[loc.blockNum].Transactions[loc.txIndex], nil
}

// HasValidTx reports whether a transaction with this ID has been committed
// as Valid — the committer's duplicate check. Invalid attempts (an
// MVCC-conflicted first try, say) do not count: the same TxID may
// legitimately be resubmitted until it commits.
func (s *BlockStore) HasValidTx(txID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.byTxID[txID]
	return ok && s.txAtLocked(loc).Validation == Valid
}

// TxByInteropKey returns the transaction committed as Valid for an interop
// request key (wire.Query.InteropKey) — the QueryByTxID-style lookup a
// relay uses to replay a cross-network invoke a sibling relay committed.
func (s *BlockStore) TxByInteropKey(key string) (*Transaction, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.byInterop[key]
	if !ok {
		return nil, fmt.Errorf("%w: interop request %q", ErrNotFound, key)
	}
	return s.txAtLocked(loc), nil
}

// VerifyChain re-walks the chain, recomputing hashes, and returns an error
// at the first inconsistency. It is the integrity check auditors run.
func (s *BlockStore) VerifyChain() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var prev []byte
	for i, b := range s.blocks {
		if b.Number != uint64(i) {
			return fmt.Errorf("%w: block %d numbered %d", ErrBrokenChain, i, b.Number)
		}
		if string(b.PrevHash) != string(prev) {
			return fmt.Errorf("%w: block %d prev hash", ErrBrokenChain, i)
		}
		if string(b.ComputeHash()) != string(b.Hash) {
			return fmt.Errorf("%w: block %d hash mismatch", ErrBrokenChain, i)
		}
		prev = b.Hash
	}
	return nil
}
