// Package ledger defines the transaction, block and block-store structures
// of the simulated permissioned ledger. Blocks are hash-chained; each
// transaction carries the read-write set produced during endorsement-time
// simulation, the endorsing peers' signatures, and a validation code set by
// the committer (execute-order-validate, as in Hyperledger Fabric §4.1 of
// the paper).
package ledger

import (
	"repro/internal/statedb"
	"repro/internal/wire"
)

// KVRead records that a key was read at a given committed version during
// simulation. A missing key is recorded with Exists=false. Namespace is the
// chaincode whose state space the key belongs to.
type KVRead struct {
	Namespace string
	Key       string
	Version   statedb.Version
	Exists    bool
}

// KVWrite records a pending write produced during simulation, scoped to the
// chaincode namespace that issued it.
type KVWrite struct {
	Namespace string
	Key       string
	Value     []byte
	IsDelete  bool
}

// RWSet is the outcome of simulating a transaction proposal.
type RWSet struct {
	Reads  []KVRead
	Writes []KVWrite
}

// Marshal encodes the read-write set for hashing and endorsement signing.
func (rw *RWSet) Marshal() []byte {
	e := wire.NewEncoder(64 * (len(rw.Reads) + len(rw.Writes)))
	for i := range rw.Reads {
		r := &rw.Reads[i]
		re := wire.NewEncoder(32)
		re.String(1, r.Key)
		re.Uint(2, r.Version.BlockNum)
		re.Uint(3, r.Version.TxNum)
		re.Bool(4, r.Exists)
		re.String(5, r.Namespace)
		e.Message(1, re.Bytes())
	}
	for i := range rw.Writes {
		w := &rw.Writes[i]
		we := wire.NewEncoder(32 + len(w.Value))
		we.String(1, w.Key)
		we.BytesField(2, w.Value)
		we.Bool(3, w.IsDelete)
		we.String(4, w.Namespace)
		e.Message(2, we.Bytes())
	}
	return e.Bytes()
}

// UnmarshalRWSet decodes a read-write set.
func UnmarshalRWSet(buf []byte) (*RWSet, error) {
	rw := &RWSet{}
	d := wire.NewDecoder(buf)
	for {
		field, ok, err := d.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rw, nil
		}
		switch field {
		case 1:
			raw, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			r, err := unmarshalKVRead(raw)
			if err != nil {
				return nil, err
			}
			rw.Reads = append(rw.Reads, r)
		case 2:
			raw, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			w, err := unmarshalKVWrite(raw)
			if err != nil {
				return nil, err
			}
			rw.Writes = append(rw.Writes, w)
		default:
			if err := d.Skip(); err != nil {
				return nil, err
			}
		}
	}
}

func unmarshalKVRead(buf []byte) (KVRead, error) {
	var r KVRead
	d := wire.NewDecoder(buf)
	for {
		field, ok, err := d.Next()
		if err != nil {
			return r, err
		}
		if !ok {
			return r, nil
		}
		switch field {
		case 1:
			r.Key, err = d.String()
		case 2:
			r.Version.BlockNum, err = d.Uint()
		case 3:
			r.Version.TxNum, err = d.Uint()
		case 4:
			r.Exists, err = d.Bool()
		case 5:
			r.Namespace, err = d.String()
		default:
			err = d.Skip()
		}
		if err != nil {
			return r, err
		}
	}
}

func unmarshalKVWrite(buf []byte) (KVWrite, error) {
	var w KVWrite
	d := wire.NewDecoder(buf)
	for {
		field, ok, err := d.Next()
		if err != nil {
			return w, err
		}
		if !ok {
			return w, nil
		}
		switch field {
		case 1:
			w.Key, err = d.String()
		case 2:
			w.Value, err = d.BytesCopy()
		case 3:
			w.IsDelete, err = d.Bool()
		case 4:
			w.Namespace, err = d.String()
		default:
			err = d.Skip()
		}
		if err != nil {
			return w, err
		}
	}
}

// StateWrites converts the write set into statedb batch form.
func (rw *RWSet) StateWrites() []statedb.Write {
	out := make([]statedb.Write, len(rw.Writes))
	for i, w := range rw.Writes {
		out[i] = statedb.Write{Namespace: w.Namespace, Key: w.Key, Value: w.Value, IsDelete: w.IsDelete}
	}
	return out
}

// WriteNamespaces returns the distinct chaincode namespaces this
// transaction writes to, in first-seen order. Callers use it for exact
// cache invalidation: only readers of these namespaces can be affected by
// the commit.
func (rw *RWSet) WriteNamespaces() []string {
	seen := make(map[string]struct{}, 2)
	out := make([]string, 0, 2)
	for i := range rw.Writes {
		ns := rw.Writes[i].Namespace
		if _, dup := seen[ns]; dup {
			continue
		}
		seen[ns] = struct{}{}
		out = append(out, ns)
	}
	return out
}
