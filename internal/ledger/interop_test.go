package ledger

import (
	"bytes"
	"testing"
)

// appendBlock builds and appends a block with the given transactions,
// failing the test on chain errors.
func appendBlock(t *testing.T, s *BlockStore, num uint64, txs ...*Transaction) {
	t.Helper()
	b := &Block{Number: num, PrevHash: s.TipHash(), Transactions: txs}
	if err := s.Append(b); err != nil {
		t.Fatalf("Append block %d: %v", num, err)
	}
}

func TestTxByInteropKeyFindsValidCommit(t *testing.T) {
	s := NewBlockStore()
	tx := &Transaction{ID: "interop-tx-1", InteropKey: "net\x00cert\x00req-1", Response: []byte("ok"), Validation: Valid}
	appendBlock(t, s, 0, tx)

	got, err := s.TxByInteropKey("net\x00cert\x00req-1")
	if err != nil {
		t.Fatalf("TxByInteropKey: %v", err)
	}
	if got != tx {
		t.Fatalf("TxByInteropKey returned %+v", got)
	}
	if _, err := s.TxByInteropKey("net\x00cert\x00other"); err == nil {
		t.Fatal("lookup of unknown interop key succeeded")
	}
}

func TestInteropIndexSkipsInvalidTransactions(t *testing.T) {
	s := NewBlockStore()
	failed := &Transaction{ID: "interop-tx-1", InteropKey: "k1", Validation: MVCCConflict}
	appendBlock(t, s, 0, failed)
	if _, err := s.TxByInteropKey("k1"); err == nil {
		t.Fatal("invalid transaction indexed for replay")
	}
	if s.HasValidTx("interop-tx-1") {
		t.Fatal("HasValidTx true for an invalid commit")
	}

	// The retry of the failed attempt commits under the same identities.
	retried := &Transaction{ID: "interop-tx-1", InteropKey: "k1", Response: []byte("done"), Validation: Valid}
	appendBlock(t, s, 1, retried)
	got, err := s.TxByInteropKey("k1")
	if err != nil || got != retried {
		t.Fatalf("TxByInteropKey after retry = %+v, %v", got, err)
	}
	if !s.HasValidTx("interop-tx-1") {
		t.Fatal("HasValidTx false after the valid retry")
	}
	// The valid retry displaces the invalid attempt in the TxID index too:
	// lookups want the transaction whose effects are on the ledger.
	byID, err := s.TxByID("interop-tx-1")
	if err != nil || byID != retried {
		t.Fatalf("TxByID after retry = %+v, %v", byID, err)
	}
}

func TestDuplicateCommitDoesNotShadowOriginal(t *testing.T) {
	s := NewBlockStore()
	original := &Transaction{ID: "interop-tx-1", InteropKey: "k1", Response: []byte("first"), Validation: Valid}
	appendBlock(t, s, 0, original)

	// A second relay's copy of the same logical invoke, marked Duplicate by
	// the committer, lands in a later block. Neither index may move off the
	// original.
	dup := &Transaction{ID: "interop-tx-1", InteropKey: "k1", Response: []byte("second"), Validation: Duplicate}
	appendBlock(t, s, 1, dup)

	byID, err := s.TxByID("interop-tx-1")
	if err != nil || byID != original {
		t.Fatalf("TxByID = %+v, %v; want the original commit", byID, err)
	}
	byKey, err := s.TxByInteropKey("k1")
	if err != nil || byKey != original {
		t.Fatalf("TxByInteropKey = %+v, %v; want the original commit", byKey, err)
	}
	if !s.HasValidTx("interop-tx-1") {
		t.Fatal("HasValidTx false despite the valid original")
	}
}

func TestInteropKeyInSignedPayload(t *testing.T) {
	plain := &Transaction{ID: "tx-1", Chaincode: "cc", Function: "fn"}
	keyed := &Transaction{ID: "tx-1", Chaincode: "cc", Function: "fn", InteropKey: "k1"}
	if string(plain.SignedPayload()) == string(keyed.SignedPayload()) {
		t.Fatal("InteropKey is not covered by the signed payload")
	}
	rebound := &Transaction{ID: "tx-1", Chaincode: "cc", Function: "fn", InteropKey: "k2"}
	if string(keyed.SignedPayload()) == string(rebound.SignedPayload()) {
		t.Fatal("re-binding the interop key does not change the signed payload")
	}
}

// TestProofBundleRidesTheCommittedTransaction pins the proof-carrying-
// commit contract at the ledger layer: the sealed proof attached before
// ordering is retrievable through the interop replay index, it survives
// the storage encoding, and it is deliberately outside the signed payload
// (the proof attests the committed response; attaching it after
// endorsement must not invalidate the endorsements).
func TestProofBundleRidesTheCommittedTransaction(t *testing.T) {
	s := NewBlockStore()
	tx := &Transaction{
		ID:         "interop-tx-7",
		InteropKey: "net\x00cert\x00req-7",
		Response:   []byte("committed"),
		Validation: Valid,
	}
	unsigned := tx.SignedPayload()
	tx.ProofBundle = []byte("sealed-proof-bytes")
	if string(tx.SignedPayload()) != string(unsigned) {
		t.Fatal("attaching the proof bundle changed the signed payload")
	}
	appendBlock(t, s, 0, tx)

	got, err := s.TxByInteropKey("net\x00cert\x00req-7")
	if err != nil {
		t.Fatalf("TxByInteropKey: %v", err)
	}
	if string(got.ProofBundle) != "sealed-proof-bytes" {
		t.Fatalf("replay index lost the bundle: %q", got.ProofBundle)
	}
	// The storage encoding carries it alongside validation metadata.
	if !bytes.Contains(tx.Marshal(), []byte("sealed-proof-bytes")) {
		t.Fatal("Marshal does not persist the proof bundle")
	}
}
