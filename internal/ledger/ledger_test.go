package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/statedb"
)

func txWith(id string, writes ...KVWrite) *Transaction {
	return &Transaction{
		ID:        id,
		Chaincode: "cc",
		Function:  "fn",
		Args:      [][]byte{[]byte("a")},
		RWSet:     RWSet{Writes: writes},
	}
}

func TestRWSetRoundTrip(t *testing.T) {
	rw := &RWSet{
		Reads: []KVRead{
			{Key: "k1", Version: statedb.Version{BlockNum: 2, TxNum: 3}, Exists: true},
			{Key: "k2", Exists: false},
		},
		Writes: []KVWrite{
			{Key: "k3", Value: []byte("v3")},
			{Key: "k4", IsDelete: true},
		},
	}
	got, err := UnmarshalRWSet(rw.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalRWSet: %v", err)
	}
	if len(got.Reads) != 2 || len(got.Writes) != 2 {
		t.Fatalf("round-trip sizes: %+v", got)
	}
	if got.Reads[0] != rw.Reads[0] || got.Reads[1] != rw.Reads[1] {
		t.Fatalf("reads mismatch: %+v", got.Reads)
	}
	if got.Writes[0].Key != "k3" || !bytes.Equal(got.Writes[0].Value, []byte("v3")) {
		t.Fatalf("writes mismatch: %+v", got.Writes)
	}
	if !got.Writes[1].IsDelete {
		t.Fatal("delete flag lost")
	}
}

func TestRWSetStateWrites(t *testing.T) {
	rw := &RWSet{Writes: []KVWrite{{Key: "a", Value: []byte("1")}, {Key: "b", IsDelete: true}}}
	sw := rw.StateWrites()
	if len(sw) != 2 || sw[0].Key != "a" || !sw[1].IsDelete {
		t.Fatalf("StateWrites = %+v", sw)
	}
}

func TestSignedPayloadCoversMutations(t *testing.T) {
	base := func() *Transaction {
		return &Transaction{
			ID:        "tx1",
			Chaincode: "cc",
			Function:  "fn",
			Args:      [][]byte{[]byte("a")},
			Response:  []byte("resp"),
			RWSet: RWSet{
				Writes: []KVWrite{{Key: "k", Value: []byte("v")}},
			},
		}
	}
	orig := base().SignedPayload()

	mutations := map[string]func(*Transaction){
		"function": func(tx *Transaction) { tx.Function = "other" },
		"args":     func(tx *Transaction) { tx.Args = [][]byte{[]byte("b")} },
		"response": func(tx *Transaction) { tx.Response = []byte("forged") },
		"writes":   func(tx *Transaction) { tx.RWSet.Writes[0].Value = []byte("forged") },
		"id":       func(tx *Transaction) { tx.ID = "tx2" },
		"event": func(tx *Transaction) {
			tx.Event = &ChaincodeEvent{Chaincode: "cc", Name: "e", Payload: []byte("p")}
		},
	}
	for name, mutate := range mutations {
		tx := base()
		mutate(tx)
		if bytes.Equal(orig, tx.SignedPayload()) {
			t.Fatalf("mutation %q does not change signed payload", name)
		}
	}
	// Validation code must NOT affect the signed payload.
	tx := base()
	tx.Validation = MVCCConflict
	if !bytes.Equal(orig, tx.SignedPayload()) {
		t.Fatal("validation code changes signed payload")
	}
}

func TestBlockStoreAppendAndChain(t *testing.T) {
	s := NewBlockStore()
	if s.Height() != 0 || s.TipHash() != nil {
		t.Fatal("new store not empty")
	}
	b0 := &Block{Number: 0, Transactions: []*Transaction{txWith("t0")}}
	if err := s.Append(b0); err != nil {
		t.Fatalf("Append genesis: %v", err)
	}
	b1 := &Block{Number: 1, PrevHash: s.TipHash(), Transactions: []*Transaction{txWith("t1"), txWith("t2")}}
	if err := s.Append(b1); err != nil {
		t.Fatalf("Append block 1: %v", err)
	}
	if s.Height() != 2 {
		t.Fatalf("Height = %d", s.Height())
	}
	if err := s.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestBlockStoreRejectsBadLinkage(t *testing.T) {
	s := NewBlockStore()
	if err := s.Append(&Block{Number: 1}); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("wrong first block number: %v", err)
	}
	if err := s.Append(&Block{Number: 0, PrevHash: []byte("junk")}); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("genesis with prev hash: %v", err)
	}
	_ = s.Append(&Block{Number: 0})
	if err := s.Append(&Block{Number: 1, PrevHash: []byte("wrong")}); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("bad prev hash: %v", err)
	}
}

func TestBlockStoreTxLookup(t *testing.T) {
	s := NewBlockStore()
	_ = s.Append(&Block{Number: 0, Transactions: []*Transaction{txWith("alpha"), txWith("beta")}})
	tx, err := s.TxByID("beta")
	if err != nil || tx.ID != "beta" {
		t.Fatalf("TxByID: %v, %v", tx, err)
	}
	if _, err := s.TxByID("gamma"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing tx: %v", err)
	}
	if _, err := s.Block(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing block: %v", err)
	}
}

func TestVerifyChainDetectsTampering(t *testing.T) {
	s := NewBlockStore()
	_ = s.Append(&Block{Number: 0, Transactions: []*Transaction{txWith("t0")}})
	_ = s.Append(&Block{Number: 1, PrevHash: s.TipHash(), Transactions: []*Transaction{txWith("t1")}})

	// Tamper with a committed transaction's write set.
	b, _ := s.Block(1)
	b.Transactions[0].RWSet.Writes = []KVWrite{{Key: "evil", Value: []byte("x")}}
	if err := s.VerifyChain(); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("tampering not detected: %v", err)
	}
}

func TestBlockHashDependsOnContents(t *testing.T) {
	b1 := &Block{Number: 0, Transactions: []*Transaction{txWith("a")}}
	b2 := &Block{Number: 0, Transactions: []*Transaction{txWith("b")}}
	if bytes.Equal(b1.ComputeHash(), b2.ComputeHash()) {
		t.Fatal("different blocks hash identically")
	}
}

func TestValidationCodeString(t *testing.T) {
	for code, want := range map[ValidationCode]string{
		Valid:               "valid",
		MVCCConflict:        "mvcc-conflict",
		EndorsementFailure:  "endorsement-failure",
		BadSignature:        "bad-signature",
		ValidationCode(250): "validation(250)",
	} {
		if code.String() != want {
			t.Fatalf("%d.String() = %q", int(code), code.String())
		}
	}
}

// TestRWSetRoundTripProperty round-trips arbitrary rwsets.
func TestRWSetRoundTripProperty(t *testing.T) {
	prop := func(key string, val []byte, bn, tn uint64, exists, isDelete bool) bool {
		rw := &RWSet{
			Reads:  []KVRead{{Key: key, Version: statedb.Version{BlockNum: bn, TxNum: tn}, Exists: exists}},
			Writes: []KVWrite{{Key: key, Value: val, IsDelete: isDelete}},
		}
		got, err := UnmarshalRWSet(rw.Marshal())
		if err != nil {
			return false
		}
		return len(got.Reads) == 1 && len(got.Writes) == 1 &&
			got.Reads[0] == rw.Reads[0] &&
			got.Writes[0].Key == key && bytes.Equal(got.Writes[0].Value, val) &&
			got.Writes[0].IsDelete == isDelete
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyBlocksChainIntact(t *testing.T) {
	s := NewBlockStore()
	for i := 0; i < 50; i++ {
		b := &Block{
			Number:       uint64(i),
			PrevHash:     s.TipHash(),
			Transactions: []*Transaction{txWith(fmt.Sprintf("tx-%d", i))},
		}
		if err := s.Append(b); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := s.VerifyChain(); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if s.Height() != 50 {
		t.Fatalf("Height = %d", s.Height())
	}
}

func BenchmarkBlockAppend(b *testing.B) {
	s := NewBlockStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := &Block{
			Number:       uint64(i),
			PrevHash:     s.TipHash(),
			Transactions: []*Transaction{txWith(fmt.Sprintf("tx-%d", i))},
		}
		if err := s.Append(blk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignedPayload(b *testing.B) {
	tx := txWith("tx", KVWrite{Key: "k", Value: make([]byte, 512)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tx.SignedPayload()
	}
}
