package chaincode

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/statedb"
)

func newEnv(t *testing.T) (*Registry, *statedb.Store) {
	t.Helper()
	return NewRegistry(), statedb.NewStore()
}

func inv(cc, fn string, args ...string) Invocation {
	byteArgs := make([][]byte, len(args))
	for i, a := range args {
		byteArgs[i] = []byte(a)
	}
	return Invocation{
		TxID:      "tx-test",
		Chaincode: cc,
		Function:  fn,
		Args:      byteArgs,
		Timestamp: time.Unix(1700000000, 0),
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	reg.Register("b", Func(func(Stub) ([]byte, error) { return nil, nil }))
	reg.Register("a", Func(func(Stub) ([]byte, error) { return nil, nil }))
	names := reg.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if _, err := reg.Get("a"); err != nil {
		t.Fatalf("Get: %v", err)
	}
}

func TestSimulatePutAndRead(t *testing.T) {
	reg, state := newEnv(t)
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		if err := stub.PutState("greeting", []byte("hello")); err != nil {
			return nil, err
		}
		v, err := stub.GetState("greeting") // read-your-writes
		if err != nil {
			return nil, err
		}
		return v, nil
	}))
	res, err := Simulate(reg, state, inv("cc", "set"))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !bytes.Equal(res.Response, []byte("hello")) {
		t.Fatalf("response = %q", res.Response)
	}
	if len(res.RWSet.Writes) != 1 || res.RWSet.Writes[0].Key != "greeting" || res.RWSet.Writes[0].Namespace != "cc" {
		t.Fatalf("writes = %+v", res.RWSet.Writes)
	}
	// Simulation must not touch committed state.
	if _, ok := state.Get("cc", "greeting"); ok {
		t.Fatal("simulation mutated committed state")
	}
}

func TestSimulateRecordsReadVersions(t *testing.T) {
	reg, state := newEnv(t)
	state.ApplyWrites([]statedb.Write{{Namespace: "cc", Key: "k", Value: []byte("v")}},
		statedb.Version{BlockNum: 7, TxNum: 2})
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		if _, err := stub.GetState("k"); err != nil {
			return nil, err
		}
		if _, err := stub.GetState("absent"); err != nil {
			return nil, err
		}
		return nil, nil
	}))
	res, err := Simulate(reg, state, inv("cc", "read"))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.RWSet.Reads) != 2 {
		t.Fatalf("reads = %+v", res.RWSet.Reads)
	}
	// Reads are sorted by key: "absent" < "k".
	if res.RWSet.Reads[0].Key != "absent" || res.RWSet.Reads[0].Exists {
		t.Fatalf("read[0] = %+v", res.RWSet.Reads[0])
	}
	got := res.RWSet.Reads[1]
	if got.Key != "k" || got.Namespace != "cc" || !got.Exists || got.Version.BlockNum != 7 || got.Version.TxNum != 2 {
		t.Fatalf("read[1] = %+v", got)
	}
}

func TestSimulateDelete(t *testing.T) {
	reg, state := newEnv(t)
	state.ApplyWrites([]statedb.Write{{Namespace: "cc", Key: "k", Value: []byte("v")}}, statedb.Version{})
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		if err := stub.DelState("k"); err != nil {
			return nil, err
		}
		v, err := stub.GetState("k")
		if err != nil {
			return nil, err
		}
		if v != nil {
			return nil, errors.New("deleted key still visible")
		}
		return nil, nil
	}))
	res, err := Simulate(reg, state, inv("cc", "del"))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.RWSet.Writes) != 1 || !res.RWSet.Writes[0].IsDelete {
		t.Fatalf("writes = %+v", res.RWSet.Writes)
	}
}

func TestReadOnlyInvocationRejectsWrites(t *testing.T) {
	reg, state := newEnv(t)
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		return nil, stub.PutState("k", []byte("v"))
	}))
	q := inv("cc", "write")
	q.ReadOnly = true
	if _, err := Simulate(reg, state, q); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only write: %v", err)
	}
}

func TestGetStateRangeExcludesPendingWrites(t *testing.T) {
	reg, state := newEnv(t)
	state.ApplyWrites([]statedb.Write{
		{Namespace: "cc", Key: "k1", Value: []byte("a")},
		{Namespace: "cc", Key: "k2", Value: []byte("b")},
	}, statedb.Version{})
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		if err := stub.PutState("k3", []byte("c")); err != nil {
			return nil, err
		}
		kvs, err := stub.GetStateRange("k1", "k9")
		if err != nil {
			return nil, err
		}
		if len(kvs) != 2 {
			return nil, fmt.Errorf("range saw %d keys", len(kvs))
		}
		return nil, nil
	}))
	if _, err := Simulate(reg, state, inv("cc", "range")); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
}

func TestCrossChaincodeInvokeSharesContext(t *testing.T) {
	reg, state := newEnv(t)
	reg.Register("callee", Func(func(stub Stub) ([]byte, error) {
		if err := stub.PutState("callee-key", []byte("x")); err != nil {
			return nil, err
		}
		return []byte("callee-resp"), nil
	}))
	reg.Register("caller", Func(func(stub Stub) ([]byte, error) {
		resp, err := stub.InvokeChaincode("callee", "doit", nil)
		if err != nil {
			return nil, err
		}
		if err := stub.PutState("caller-key", []byte("y")); err != nil {
			return nil, err
		}
		return resp, nil
	}))
	res, err := Simulate(reg, state, inv("caller", "go"))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !bytes.Equal(res.Response, []byte("callee-resp")) {
		t.Fatalf("response = %q", res.Response)
	}
	if len(res.RWSet.Writes) != 2 {
		t.Fatalf("writes = %+v", res.RWSet.Writes)
	}
	// Write order must reflect execution order: callee wrote first. Each
	// write is attributed to the chaincode that issued it.
	if res.RWSet.Writes[0].Key != "callee-key" || res.RWSet.Writes[1].Key != "caller-key" {
		t.Fatalf("write order = %+v", res.RWSet.Writes)
	}
	if res.RWSet.Writes[0].Namespace != "callee" || res.RWSet.Writes[1].Namespace != "caller" {
		t.Fatalf("write namespaces = %+v", res.RWSet.Writes)
	}
}

func TestCrossChaincodeInvokeUnknown(t *testing.T) {
	reg, state := newEnv(t)
	reg.Register("caller", Func(func(stub Stub) ([]byte, error) {
		return stub.InvokeChaincode("ghost", "fn", nil)
	}))
	if _, err := Simulate(reg, state, inv("caller", "go")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown callee: %v", err)
	}
}

func TestSetEventLastWins(t *testing.T) {
	reg, state := newEnv(t)
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		if err := stub.SetEvent("first", []byte("1")); err != nil {
			return nil, err
		}
		if err := stub.SetEvent("second", []byte("2")); err != nil {
			return nil, err
		}
		return nil, nil
	}))
	res, err := Simulate(reg, state, inv("cc", "emit"))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Event == nil || res.Event.Name != "second" {
		t.Fatalf("event = %+v", res.Event)
	}
	if res.Event.Chaincode != "cc" {
		t.Fatalf("event chaincode = %q", res.Event.Chaincode)
	}
}

func TestSetEventEmptyName(t *testing.T) {
	reg, state := newEnv(t)
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		return nil, stub.SetEvent("", nil)
	}))
	if _, err := Simulate(reg, state, inv("cc", "emit")); err == nil {
		t.Fatal("empty event name accepted")
	}
}

func TestStubAccessors(t *testing.T) {
	reg, state := newEnv(t)
	var gotTx, gotFn string
	var gotArgs []string
	var gotCreator []byte
	var gotTime time.Time
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		gotTx = stub.TxID()
		gotFn = stub.Function()
		gotArgs = stub.StringArgs()
		gotCreator = stub.CreatorCert()
		gotTime = stub.Timestamp()
		return nil, nil
	}))
	proposal := inv("cc", "fn", "a1", "a2")
	proposal.CreatorCert = []byte("CERT")
	if _, err := Simulate(reg, state, proposal); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if gotTx != "tx-test" || gotFn != "fn" {
		t.Fatalf("tx=%q fn=%q", gotTx, gotFn)
	}
	if len(gotArgs) != 2 || gotArgs[0] != "a1" {
		t.Fatalf("args = %v", gotArgs)
	}
	if !bytes.Equal(gotCreator, []byte("CERT")) {
		t.Fatalf("creator = %q", gotCreator)
	}
	if !gotTime.Equal(time.Unix(1700000000, 0)) {
		t.Fatalf("timestamp = %v", gotTime)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	reg, state := newEnv(t)
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		if _, err := stub.GetState(""); err == nil {
			return nil, errors.New("GetState empty key accepted")
		}
		if err := stub.PutState("", nil); err == nil {
			return nil, errors.New("PutState empty key accepted")
		}
		if err := stub.DelState(""); err == nil {
			return nil, errors.New("DelState empty key accepted")
		}
		return nil, nil
	}))
	if _, err := Simulate(reg, state, inv("cc", "fn")); err != nil {
		t.Fatal(err)
	}
}

func TestChaincodeErrorPropagates(t *testing.T) {
	reg, state := newEnv(t)
	boom := errors.New("boom")
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) { return nil, boom }))
	if _, err := Simulate(reg, state, inv("cc", "fn")); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkSimulateReadWrite(b *testing.B) {
	reg := NewRegistry()
	state := statedb.NewStore()
	state.ApplyWrites([]statedb.Write{{Namespace: "cc", Key: "in", Value: make([]byte, 256)}}, statedb.Version{})
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		v, err := stub.GetState("in")
		if err != nil {
			return nil, err
		}
		if err := stub.PutState("out", v); err != nil {
			return nil, err
		}
		return v, nil
	}))
	proposal := inv("cc", "fn")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(reg, state, proposal); err != nil {
			b.Fatal(err)
		}
	}
}
