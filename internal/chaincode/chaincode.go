// Package chaincode defines the smart-contract programming model of the
// simulated platform: a Chaincode receives a Stub giving it access to the
// world state, its invocation arguments, the submitting client's identity
// and cross-chaincode invocation. The stub used during endorsement records
// a read-write set instead of mutating state directly, exactly as in
// Fabric's execute-order-validate model.
package chaincode

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/statedb"
)

var (
	// ErrNotFound is returned by registry lookups for unknown chaincodes.
	ErrNotFound = errors.New("chaincode: not found")
	// ErrReadOnly is returned when a query-only invocation attempts a
	// write.
	ErrReadOnly = errors.New("chaincode: write attempted in read-only invocation")
)

// Chaincode is a deployable smart contract.
type Chaincode interface {
	// Invoke executes one transaction proposal or query against the stub
	// and returns the response payload.
	Invoke(stub Stub) ([]byte, error)
}

// Func adapts a function to the Chaincode interface.
type Func func(stub Stub) ([]byte, error)

// Invoke implements Chaincode.
func (f Func) Invoke(stub Stub) ([]byte, error) { return f(stub) }

// KV is a key/value pair returned by range queries.
type KV struct {
	Key   string
	Value []byte
}

// Stub is the interface a chaincode uses to interact with its invocation
// context and the ledger.
type Stub interface {
	// TxID returns the transaction (or query) identifier.
	TxID() string
	// Function returns the invoked function name.
	Function() string
	// Args returns the invocation arguments (excluding the function name).
	Args() [][]byte
	// StringArgs returns Args as strings.
	StringArgs() []string
	// CreatorCert returns the PEM certificate of the submitting client.
	CreatorCert() []byte
	// Timestamp returns the proposal timestamp (identical on all peers for
	// a given proposal, keeping simulation deterministic).
	Timestamp() time.Time

	// GetState reads a key, observing any write buffered earlier in the
	// same invocation.
	GetState(key string) ([]byte, error)
	// PutState buffers a write.
	PutState(key string, value []byte) error
	// DelState buffers a delete.
	DelState(key string) error
	// GetStateRange returns committed keys in [start, end) in lexical
	// order. Pending writes of the current invocation are not visible, as
	// in Fabric.
	GetStateRange(start, end string) ([]KV, error)

	// InvokeChaincode synchronously calls another chaincode deployed on
	// the same peer, sharing this invocation's read-write context.
	InvokeChaincode(name, function string, args [][]byte) ([]byte, error)

	// SetEvent attaches a chaincode event to the transaction; the last
	// call wins. Events are delivered only if the transaction commits.
	SetEvent(name string, payload []byte) error

	// GetTransient returns proposal-scoped data that is not recorded on
	// the ledger, mirroring Fabric's transient field. The relay driver
	// uses it to mark cross-network queries and carry the requesting
	// network's identity to interop-aware chaincode.
	GetTransient(key string) []byte
}

// Registry holds the chaincodes deployed on a peer.
type Registry struct {
	mu  sync.RWMutex
	ccs map[string]Chaincode
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ccs: make(map[string]Chaincode)}
}

// Register deploys a chaincode under the given name, replacing any previous
// deployment (chaincode upgrade).
func (r *Registry) Register(name string, cc Chaincode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ccs[name] = cc
}

// Get returns a deployed chaincode.
func (r *Registry) Get(name string) (Chaincode, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cc, ok := r.ccs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return cc, nil
}

// Names returns the sorted names of all deployed chaincodes.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.ccs))
	for n := range r.ccs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Invocation describes one proposal to simulate.
type Invocation struct {
	TxID        string
	Chaincode   string
	Function    string
	Args        [][]byte
	CreatorCert []byte
	Timestamp   time.Time
	ReadOnly    bool              // queries may not write
	Transient   map[string][]byte // proposal-scoped, never written to the ledger

	// InteropKey is the exactly-once identity of the cross-network request
	// behind this proposal (wire.Query.InteropKey), empty for local
	// transactions. It travels into the committed transaction's signed
	// metadata so the ledger itself can reject a second commit of the same
	// logical invoke submitted through a different relay.
	InteropKey string
}

// SimResult is the outcome of simulating an invocation.
type SimResult struct {
	Response []byte
	RWSet    ledger.RWSet
	Event    *ledger.ChaincodeEvent
}

// Simulate runs an invocation against the registry and a committed state,
// producing the response and the read-write set. The state itself is never
// mutated.
func Simulate(reg *Registry, state *statedb.Store, inv Invocation) (*SimResult, error) {
	cc, err := reg.Get(inv.Chaincode)
	if err != nil {
		return nil, err
	}
	ctx := &simContext{
		reg:      reg,
		state:    state,
		inv:      inv,
		writes:   make(map[string]pendingWrite),
		readVers: make(map[string]ledger.KVRead),
	}
	stub := &simStub{ctx: ctx, chaincode: inv.Chaincode, function: inv.Function, args: inv.Args}
	resp, err := cc.Invoke(stub)
	if err != nil {
		return nil, err
	}
	return &SimResult{Response: resp, RWSet: ctx.rwset(), Event: ctx.event}, nil
}

type pendingWrite struct {
	seq      int
	ns       string
	key      string
	value    []byte
	isDelete bool
}

// nsKey joins a namespace and key into one map key. U+0000 cannot appear in
// namespace names, so the join is unambiguous.
func nsKey(ns, key string) string { return ns + "\x00" + key }

// simContext is shared across a proposal's stub and any stubs created by
// cross-chaincode invocation, so the whole call tree yields one read-write
// set (Fabric's same-channel chaincode-to-chaincode semantics). Each stub
// in the tree reads and writes its own chaincode's namespace, so the maps
// are keyed by namespace+key.
type simContext struct {
	reg      *Registry
	state    *statedb.Store
	inv      Invocation
	writes   map[string]pendingWrite
	writeSeq int
	readVers map[string]ledger.KVRead
	event    *ledger.ChaincodeEvent
}

func (c *simContext) rwset() ledger.RWSet {
	rw := ledger.RWSet{}
	readKeys := make([]string, 0, len(c.readVers))
	for k := range c.readVers {
		readKeys = append(readKeys, k)
	}
	sort.Strings(readKeys)
	for _, k := range readKeys {
		rw.Reads = append(rw.Reads, c.readVers[k])
	}
	ordered := make([]pendingWrite, 0, len(c.writes))
	for _, w := range c.writes {
		ordered = append(ordered, w)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	for _, w := range ordered {
		rw.Writes = append(rw.Writes, ledger.KVWrite{Namespace: w.ns, Key: w.key, Value: w.value, IsDelete: w.isDelete})
	}
	return rw
}

type simStub struct {
	ctx       *simContext
	chaincode string
	function  string
	args      [][]byte
}

var _ Stub = (*simStub)(nil)

func (s *simStub) TxID() string        { return s.ctx.inv.TxID }
func (s *simStub) Function() string    { return s.function }
func (s *simStub) Args() [][]byte      { return s.args }
func (s *simStub) CreatorCert() []byte { return s.ctx.inv.CreatorCert }
func (s *simStub) Timestamp() time.Time {
	return s.ctx.inv.Timestamp
}

func (s *simStub) StringArgs() []string {
	out := make([]string, len(s.args))
	for i, a := range s.args {
		out[i] = string(a)
	}
	return out
}

func (s *simStub) GetState(key string) ([]byte, error) {
	if key == "" {
		return nil, statedb.ErrInvalidKey
	}
	nk := nsKey(s.chaincode, key)
	// Read-your-writes within the invocation.
	if w, ok := s.ctx.writes[nk]; ok {
		if w.isDelete {
			return nil, nil
		}
		out := make([]byte, len(w.value))
		copy(out, w.value)
		return out, nil
	}
	vv, exists := s.ctx.state.Get(s.chaincode, key)
	// Record the first observed version for MVCC validation.
	if _, seen := s.ctx.readVers[nk]; !seen {
		s.ctx.readVers[nk] = ledger.KVRead{Namespace: s.chaincode, Key: key, Version: vv.Version, Exists: exists}
	}
	if !exists {
		return nil, nil
	}
	return vv.Value, nil
}

func (s *simStub) PutState(key string, value []byte) error {
	if key == "" {
		return statedb.ErrInvalidKey
	}
	if s.ctx.inv.ReadOnly {
		return ErrReadOnly
	}
	val := make([]byte, len(value))
	copy(val, value)
	s.ctx.writeSeq++
	s.ctx.writes[nsKey(s.chaincode, key)] = pendingWrite{seq: s.ctx.writeSeq, ns: s.chaincode, key: key, value: val}
	return nil
}

func (s *simStub) DelState(key string) error {
	if key == "" {
		return statedb.ErrInvalidKey
	}
	if s.ctx.inv.ReadOnly {
		return ErrReadOnly
	}
	s.ctx.writeSeq++
	s.ctx.writes[nsKey(s.chaincode, key)] = pendingWrite{seq: s.ctx.writeSeq, ns: s.chaincode, key: key, isDelete: true}
	return nil
}

func (s *simStub) GetStateRange(start, end string) ([]KV, error) {
	kvs := s.ctx.state.Range(s.chaincode, start, end)
	out := make([]KV, 0, len(kvs))
	for _, kv := range kvs {
		// Range reads are recorded for MVCC like point reads.
		nk := nsKey(s.chaincode, kv.Key)
		if _, seen := s.ctx.readVers[nk]; !seen {
			s.ctx.readVers[nk] = ledger.KVRead{Namespace: s.chaincode, Key: kv.Key, Version: kv.Version, Exists: true}
		}
		out = append(out, KV{Key: kv.Key, Value: kv.Value})
	}
	return out, nil
}

func (s *simStub) InvokeChaincode(name, function string, args [][]byte) ([]byte, error) {
	cc, err := s.ctx.reg.Get(name)
	if err != nil {
		return nil, err
	}
	sub := &simStub{ctx: s.ctx, chaincode: name, function: function, args: args}
	return cc.Invoke(sub)
}

func (s *simStub) GetTransient(key string) []byte {
	return s.ctx.inv.Transient[key]
}

func (s *simStub) SetEvent(name string, payload []byte) error {
	if name == "" {
		return errors.New("chaincode: empty event name")
	}
	p := make([]byte, len(payload))
	copy(p, payload)
	s.ctx.event = &ledger.ChaincodeEvent{Chaincode: s.chaincode, Name: name, Payload: p}
	return nil
}
