package chaincode

import (
	"bytes"
	"testing"

	"repro/internal/statedb"
)

func TestGetTransient(t *testing.T) {
	reg := NewRegistry()
	state := statedb.NewStore()
	var seen, missing []byte
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		seen = stub.GetTransient("interop")
		missing = stub.GetTransient("absent")
		return nil, nil
	}))
	proposal := inv("cc", "fn")
	proposal.Transient = map[string][]byte{"interop": []byte("1")}
	if _, err := Simulate(reg, state, proposal); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !bytes.Equal(seen, []byte("1")) {
		t.Fatalf("transient = %q", seen)
	}
	if missing != nil {
		t.Fatalf("absent transient = %q", missing)
	}
}

func TestTransientNotInRWSet(t *testing.T) {
	// Transient data must never leak into the read-write set (it is
	// proposal-scoped and off-ledger by definition).
	reg := NewRegistry()
	state := statedb.NewStore()
	reg.Register("cc", Func(func(stub Stub) ([]byte, error) {
		return stub.GetTransient("secret"), nil
	}))
	proposal := inv("cc", "fn")
	proposal.Transient = map[string][]byte{"secret": []byte("classified")}
	res, err := Simulate(reg, state, proposal)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.RWSet.Reads) != 0 || len(res.RWSet.Writes) != 0 {
		t.Fatalf("transient leaked into rwset: %+v", res.RWSet)
	}
	if !bytes.Equal(res.Response, []byte("classified")) {
		t.Fatalf("response = %q", res.Response)
	}
}

func TestTransientSharedAcrossChaincodeInvoke(t *testing.T) {
	// Cross-chaincode invocations see the same proposal transient — the
	// mechanism by which the ECC learns a query arrived via a relay.
	reg := NewRegistry()
	state := statedb.NewStore()
	reg.Register("callee", Func(func(stub Stub) ([]byte, error) {
		return stub.GetTransient("interop"), nil
	}))
	reg.Register("caller", Func(func(stub Stub) ([]byte, error) {
		return stub.InvokeChaincode("callee", "fn", nil)
	}))
	proposal := inv("caller", "go")
	proposal.Transient = map[string][]byte{"interop": []byte("relay")}
	res, err := Simulate(reg, state, proposal)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !bytes.Equal(res.Response, []byte("relay")) {
		t.Fatalf("callee transient = %q", res.Response)
	}
}
