package cryptoutil

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestManager(t testing.TB, ttl time.Duration, counter *OpCounter) *SessionManager {
	t.Helper()
	m := NewSessionManager(ttl, counter)
	return m
}

func TestSessionSealDecryptRoundTrip(t *testing.T) {
	key, _ := GenerateKey()
	m := newTestManager(t, time.Minute, nil)
	sk, err := m.KeyFor("requester-1", &key.PublicKey)
	if err != nil {
		t.Fatalf("KeyFor: %v", err)
	}
	context := []byte("query-digest-1")
	plaintext := []byte("attested metadata")
	env, err := sk.Seal(context, plaintext)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := SessionDecrypt(key, sk.Ephemeral, sk.Generation, context, env)
	if err != nil {
		t.Fatalf("SessionDecrypt: %v", err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatalf("round trip = %q, want %q", got, plaintext)
	}
}

// TestSessionedEnvelopeProperty is the sessioned sibling of
// TestEncryptDecryptProperty: arbitrary plaintexts round-trip through
// Seal/SessionDecrypt, and the very same envelope fed to the classic
// Decrypt fails — the sessioned layout deliberately lacks the point
// prefix the classic decoder demands, so a legacy client can never
// half-open a sessioned envelope.
func TestSessionedEnvelopeProperty(t *testing.T) {
	key, _ := GenerateKey()
	m := newTestManager(t, time.Minute, nil)
	sk, err := m.KeyFor("prop-requester", &key.PublicKey)
	if err != nil {
		t.Fatalf("KeyFor: %v", err)
	}
	context := []byte("prop-query-digest")
	prop := func(data []byte) bool {
		env, err := sk.Seal(context, data)
		if err != nil {
			return false
		}
		got, err := SessionDecrypt(key, sk.Ephemeral, sk.Generation, context, env)
		if err != nil || !bytes.Equal(got, data) {
			return false
		}
		if _, err := Decrypt(key, env); !errors.Is(err, ErrDecrypt) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCrossGenerationRoundTrip pins the generation binding: an
// envelope sealed before a rotation still opens with its own (ephemeral,
// generation) pair after the manager has moved on, and never opens under
// the successor generation's parameters.
func TestSessionCrossGenerationRoundTrip(t *testing.T) {
	key, _ := GenerateKey()
	m := newTestManager(t, time.Minute, nil)
	clock := time.Unix(5000, 0)
	m.now = func() time.Time { return clock }

	context := []byte("qd-gen")
	old, err := m.KeyFor("gen-requester", &key.PublicKey)
	if err != nil {
		t.Fatalf("KeyFor gen 1: %v", err)
	}
	oldEnv, err := old.Seal(context, []byte("sealed under gen 1"))
	if err != nil {
		t.Fatalf("Seal gen 1: %v", err)
	}

	clock = clock.Add(2 * time.Minute) // expire the generation
	fresh, err := m.KeyFor("gen-requester", &key.PublicKey)
	if err != nil {
		t.Fatalf("KeyFor gen 2: %v", err)
	}
	if fresh.Generation == old.Generation {
		t.Fatal("TTL expiry did not rotate the generation")
	}
	if bytes.Equal(fresh.Ephemeral, old.Ephemeral) {
		t.Fatal("rotation reused the ephemeral point")
	}
	freshEnv, err := fresh.Seal(context, []byte("sealed under gen 2"))
	if err != nil {
		t.Fatalf("Seal gen 2: %v", err)
	}

	got, err := SessionDecrypt(key, old.Ephemeral, old.Generation, context, oldEnv)
	if err != nil || string(got) != "sealed under gen 1" {
		t.Fatalf("old-generation envelope: %q, %v", got, err)
	}
	got, err = SessionDecrypt(key, fresh.Ephemeral, fresh.Generation, context, freshEnv)
	if err != nil || string(got) != "sealed under gen 2" {
		t.Fatalf("new-generation envelope: %q, %v", got, err)
	}
	// The wrong generation (even with the right ephemeral) must not open.
	if _, err := SessionDecrypt(key, old.Ephemeral, fresh.Generation, context, oldEnv); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("cross-generation open got %v, want ErrDecrypt", err)
	}
}

// TestSessionWarmHitSkipsECDH is the amortization claim in miniature: the
// first KeyFor pays one agreement, every further KeyFor under the same
// label and generation pays zero.
func TestSessionWarmHitSkipsECDH(t *testing.T) {
	key, _ := GenerateKey()
	var ops OpCounter
	m := newTestManager(t, time.Minute, &ops)
	for i := 0; i < 10; i++ {
		if _, err := m.KeyFor("warm-poller", &key.PublicKey); err != nil {
			t.Fatalf("KeyFor %d: %v", i, err)
		}
	}
	if got := ops.ECDHOps(); got != 1 {
		t.Fatalf("ECDH ops after 10 warm KeyFor = %d, want 1", got)
	}
}

// TestSessionCertRotationFreshECDH: the label is the certificate digest,
// so a requester presenting a rotated certificate — same underlying key
// pair or not — triggers a fresh agreement instead of a silent reuse.
func TestSessionCertRotationFreshECDH(t *testing.T) {
	key, _ := GenerateKey()
	var ops OpCounter
	m := newTestManager(t, time.Minute, &ops)
	if _, err := m.KeyFor("cert-digest-old", &key.PublicKey); err != nil {
		t.Fatalf("KeyFor old cert: %v", err)
	}
	if _, err := m.KeyFor("cert-digest-new", &key.PublicKey); err != nil {
		t.Fatalf("KeyFor new cert: %v", err)
	}
	if got := ops.ECDHOps(); got != 2 {
		t.Fatalf("ECDH ops across a certificate rotation = %d, want 2", got)
	}
}

// TestSessionManagerConcurrent hammers one manager from many goroutines
// with a TTL short enough that rotations race live KeyFor calls; run
// under -race this is the session cache's data-race proof. Every envelope
// sealed must still open with the (ephemeral, generation) its key
// reported, whatever generation it landed in.
func TestSessionManagerConcurrent(t *testing.T) {
	key, _ := GenerateKey()
	m := newTestManager(t, 50*time.Microsecond, &OpCounter{})
	labels := []string{"org-a", "org-b", "org-c"}
	context := []byte("concurrent-qd")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sk, err := m.KeyFor(labels[(g+i)%len(labels)], &key.PublicKey)
				if err != nil {
					errs <- err
					return
				}
				env, err := sk.Seal(context, []byte{byte(g), byte(i)})
				if err != nil {
					errs <- err
					return
				}
				got, err := SessionDecrypt(key, sk.Ephemeral, sk.Generation, context, env)
				if err != nil || !bytes.Equal(got, []byte{byte(g), byte(i)}) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent session use: %v", err)
	}
}

func TestSessionDecryptMalformed(t *testing.T) {
	key, _ := GenerateKey()
	m := newTestManager(t, time.Minute, nil)
	sk, err := m.KeyFor("malformed", &key.PublicKey)
	if err != nil {
		t.Fatalf("KeyFor: %v", err)
	}
	context := []byte("qd-malformed")
	env, err := sk.Seal(context, []byte("payload"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	cases := []struct {
		name      string
		ephemeral []byte
		gen       uint64
		ctx       []byte
		ct        []byte
	}{
		{"truncated envelope", sk.Ephemeral, sk.Generation, context, env[:4]},
		{"empty envelope", sk.Ephemeral, sk.Generation, context, nil},
		{"garbage ephemeral", []byte{0x04, 0x01, 0x02}, sk.Generation, context, env},
		{"wrong generation", sk.Ephemeral, sk.Generation + 1, context, env},
		{"wrong context", sk.Ephemeral, sk.Generation, []byte("other-query"), env},
		{"flipped byte", sk.Ephemeral, sk.Generation, context, flipLast(env)},
	}
	for _, tc := range cases {
		if _, err := SessionDecrypt(key, tc.ephemeral, tc.gen, tc.ctx, tc.ct); !errors.Is(err, ErrDecrypt) {
			t.Errorf("%s: got %v, want ErrDecrypt", tc.name, err)
		}
	}
	if _, err := SessionDecrypt(nil, sk.Ephemeral, sk.Generation, context, env); !errors.Is(err, ErrInvalidKey) {
		t.Errorf("nil key: got %v, want ErrInvalidKey", err)
	}
}

func flipLast(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[len(out)-1] ^= 0xff
	return out
}

// FuzzSessionDecrypt drives the sessioned envelope decoder with arbitrary
// ephemeral points, generations, contexts and ciphertexts: it must never
// panic, and must only succeed on the genuine envelope it was seeded with.
func FuzzSessionDecrypt(f *testing.F) {
	key, err := GenerateKey()
	if err != nil {
		f.Fatalf("GenerateKey: %v", err)
	}
	m := NewSessionManager(time.Minute, nil)
	sk, err := m.KeyFor("fuzz-requester", &key.PublicKey)
	if err != nil {
		f.Fatalf("KeyFor: %v", err)
	}
	context := []byte("fuzz-query-digest")
	genuine, err := sk.Seal(context, []byte("fuzz plaintext"))
	if err != nil {
		f.Fatalf("Seal: %v", err)
	}
	f.Add(sk.Ephemeral, sk.Generation, context, genuine)
	f.Add([]byte{}, uint64(0), []byte{}, []byte{})
	f.Add(sk.Ephemeral, sk.Generation+1, context, genuine)
	f.Add([]byte{0x04}, sk.Generation, context, genuine[:8])
	f.Fuzz(func(t *testing.T, ephemeral []byte, generation uint64, ctx, ct []byte) {
		plaintext, err := SessionDecrypt(key, ephemeral, generation, ctx, ct)
		if err != nil {
			if !errors.Is(err, ErrDecrypt) && !errors.Is(err, ErrInvalidKey) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		// Success implies the exact seeded envelope: same parameters, same
		// plaintext. Anything else is a forged open.
		if !bytes.Equal(plaintext, []byte("fuzz plaintext")) {
			t.Fatalf("decoder accepted a forged envelope: %q", plaintext)
		}
	})
}
