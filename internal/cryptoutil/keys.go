// Package cryptoutil provides the cryptographic primitives used throughout
// the interoperability stack: ECDSA P-256 signatures for peer attestations,
// SHA-256 digests for ledger hashing, and an ECIES hybrid scheme (ephemeral
// ECDH + HKDF + AES-GCM) for end-to-end encryption of query results and
// proof metadata so that untrusted relays can neither read nor exfiltrate
// transferred data. ECIES comes in two wire-compatible regimes: the classic
// per-envelope scheme (Encrypt/Decrypt, one ephemeral keygen + ECDH per
// envelope) and a sessioned mode (SessionManager/SessionDecrypt) that
// amortizes the expensive scalar multiplications — one ephemeral key per
// TTL generation, one cached agreement per requester, and a fresh
// domain-separated AEAD key per query so confidentiality stays per-query.
// OpCounter tallies ECDH/sign/encrypt operations for both regimes.
package cryptoutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
)

var (
	// ErrInvalidSignature is returned when a signature fails verification.
	ErrInvalidSignature = errors.New("cryptoutil: invalid signature")
	// ErrInvalidKey is returned when key material cannot be parsed.
	ErrInvalidKey = errors.New("cryptoutil: invalid key material")
)

// GenerateKey creates a new ECDSA P-256 private key.
func GenerateKey() (*ecdsa.PrivateKey, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ecdsa key: %w", err)
	}
	return key, nil
}

// Sign produces an ASN.1 DER encoded ECDSA signature over the SHA-256 digest
// of msg.
func Sign(key *ecdsa.PrivateKey, msg []byte) ([]byte, error) {
	if key == nil {
		return nil, ErrInvalidKey
	}
	digest := sha256.Sum256(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sign: %w", err)
	}
	return sig, nil
}

// Verify checks an ASN.1 DER encoded ECDSA signature over the SHA-256 digest
// of msg. It returns ErrInvalidSignature when the signature does not match.
func Verify(pub *ecdsa.PublicKey, msg, sig []byte) error {
	if pub == nil {
		return ErrInvalidKey
	}
	digest := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(pub, digest[:], sig) {
		return ErrInvalidSignature
	}
	return nil
}

// MarshalPublicKey serializes an ECDSA public key to PKIX DER form, the
// format embedded in identity certificates and wire messages.
func MarshalPublicKey(pub *ecdsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("marshal public key: %w", err)
	}
	return der, nil
}

// ParsePublicKey parses a PKIX DER encoded ECDSA public key.
func ParsePublicKey(der []byte) (*ecdsa.PublicKey, error) {
	key, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	pub, ok := key.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an ECDSA key", ErrInvalidKey)
	}
	return pub, nil
}

// MarshalPrivateKey serializes an ECDSA private key to PKCS#8 DER form.
func MarshalPrivateKey(key *ecdsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("marshal private key: %w", err)
	}
	return der, nil
}

// ParsePrivateKey parses a PKCS#8 DER encoded ECDSA private key.
func ParsePrivateKey(der []byte) (*ecdsa.PrivateKey, error) {
	key, err := x509.ParsePKCS8PrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	priv, ok := key.(*ecdsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("%w: not an ECDSA key", ErrInvalidKey)
	}
	return priv, nil
}
