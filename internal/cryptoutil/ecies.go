package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// ErrDecrypt is returned when a ciphertext cannot be decrypted, either
// because it is malformed or because the wrong private key was used.
var ErrDecrypt = errors.New("cryptoutil: decryption failed")

// eciesInfo domain-separates the derived encryption keys from any other use
// of the shared secret.
var eciesInfo = []byte("interop-ecies-v1")

// Encrypt performs ECIES hybrid encryption of plaintext to the holder of the
// given ECDSA P-256 public key: an ephemeral ECDH key agreement produces a
// shared secret, HKDF-SHA256 derives an AES-256 key, and AES-GCM provides
// authenticated encryption. The output layout is:
//
//	uncompressed ephemeral public point (65 bytes) || GCM nonce || ciphertext
//
// This is the mechanism peers use to make results and proof metadata
// readable only by the requesting client (§4.3): a malicious relay carrying
// the message learns nothing and cannot strip a verifiable proof out of it.
func Encrypt(pub *ecdsa.PublicKey, plaintext []byte) ([]byte, error) {
	if pub == nil {
		return nil, ErrInvalidKey
	}
	recipient, err := pub.ECDH()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	ephemeral, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ephemeral key: %w", err)
	}
	secret, err := ephemeral.ECDH(recipient)
	if err != nil {
		return nil, fmt.Errorf("ecdh agreement: %w", err)
	}
	ephemeralPub := ephemeral.PublicKey().Bytes()
	aead, err := newAEAD(secret, ephemeralPub)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("generate gcm nonce: %w", err)
	}
	out := make([]byte, 0, len(ephemeralPub)+len(nonce)+len(plaintext)+aead.Overhead())
	out = append(out, ephemeralPub...)
	out = append(out, nonce...)
	out = aead.Seal(out, nonce, plaintext, nil)
	return out, nil
}

// Decrypt reverses Encrypt using the recipient's private key.
func Decrypt(priv *ecdsa.PrivateKey, ciphertext []byte) ([]byte, error) {
	if priv == nil {
		return nil, ErrInvalidKey
	}
	recipient, err := priv.ECDH()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	const pointLen = 65 // uncompressed P-256 point
	if len(ciphertext) < pointLen {
		return nil, ErrDecrypt
	}
	ephemeralPub, err := ecdh.P256().NewPublicKey(ciphertext[:pointLen])
	if err != nil {
		return nil, fmt.Errorf("%w: bad ephemeral point", ErrDecrypt)
	}
	secret, err := recipient.ECDH(ephemeralPub)
	if err != nil {
		return nil, fmt.Errorf("%w: ecdh agreement", ErrDecrypt)
	}
	aead, err := newAEAD(secret, ciphertext[:pointLen])
	if err != nil {
		return nil, err
	}
	rest := ciphertext[pointLen:]
	if len(rest) < aead.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, sealed := rest[:aead.NonceSize()], rest[aead.NonceSize():]
	plaintext, err := aead.Open(nil, nonce, sealed, nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plaintext, nil
}

// newAEAD derives an AES-256-GCM cipher from the ECDH shared secret via
// HKDF-SHA256, binding the ephemeral public key as salt.
func newAEAD(secret, salt []byte) (cipher.AEAD, error) {
	key := hkdfSHA256(secret, salt, eciesInfo, 32)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("new aes cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("new gcm: %w", err)
	}
	return aead, nil
}

// hkdfSHA256 implements RFC 5869 extract-and-expand with SHA-256. Only the
// first ceil(size/32) blocks are computed, which is all the ECIES scheme
// needs; the stdlib gained crypto/hkdf only recently, so the few lines are
// kept local.
func hkdfSHA256(secret, salt, info []byte, size int) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	extractor := hmac.New(sha256.New, salt)
	extractor.Write(secret)
	prk := extractor.Sum(nil)

	out := make([]byte, 0, size)
	var prev []byte
	for counter := byte(1); len(out) < size; counter++ {
		expander := hmac.New(sha256.New, prk)
		expander.Write(prev)
		expander.Write(info)
		expander.Write([]byte{counter})
		prev = expander.Sum(nil)
		out = append(out, prev...)
	}
	return out[:size]
}
