package cryptoutil

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	key, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	msg := []byte("bill of lading for po-1001")
	sig, err := Sign(key, msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := Verify(&key.PublicKey, msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	key, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	msg := []byte("original payload")
	sig, err := Sign(key, msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	tampered := []byte("original payloaD")
	if err := Verify(&key.PublicKey, tampered, sig); err == nil {
		t.Fatal("Verify accepted a tampered message")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	key1, _ := GenerateKey()
	key2, _ := GenerateKey()
	msg := []byte("payload")
	sig, err := Sign(key1, msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := Verify(&key2.PublicKey, msg, sig); err == nil {
		t.Fatal("Verify accepted a signature from a different key")
	}
}

func TestSignNilKey(t *testing.T) {
	if _, err := Sign(nil, []byte("x")); err == nil {
		t.Fatal("Sign with nil key must error")
	}
	if err := Verify(nil, []byte("x"), []byte("y")); err == nil {
		t.Fatal("Verify with nil key must error")
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	key, _ := GenerateKey()
	der, err := MarshalPublicKey(&key.PublicKey)
	if err != nil {
		t.Fatalf("MarshalPublicKey: %v", err)
	}
	parsed, err := ParsePublicKey(der)
	if err != nil {
		t.Fatalf("ParsePublicKey: %v", err)
	}
	if !parsed.Equal(&key.PublicKey) {
		t.Fatal("round-tripped public key differs")
	}
}

func TestPrivateKeyMarshalRoundTrip(t *testing.T) {
	key, _ := GenerateKey()
	der, err := MarshalPrivateKey(key)
	if err != nil {
		t.Fatalf("MarshalPrivateKey: %v", err)
	}
	parsed, err := ParsePrivateKey(der)
	if err != nil {
		t.Fatalf("ParsePrivateKey: %v", err)
	}
	if !parsed.Equal(key) {
		t.Fatal("round-tripped private key differs")
	}
}

func TestParsePublicKeyGarbage(t *testing.T) {
	if _, err := ParsePublicKey([]byte("not a key")); err == nil {
		t.Fatal("ParsePublicKey accepted garbage")
	}
	if _, err := ParsePrivateKey([]byte{0x01, 0x02}); err == nil {
		t.Fatal("ParsePrivateKey accepted garbage")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key, _ := GenerateKey()
	plaintext := []byte("confidential B/L contents")
	ct, err := Encrypt(&key.PublicKey, plaintext)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if bytes.Contains(ct, plaintext) {
		t.Fatal("ciphertext contains plaintext")
	}
	got, err := Decrypt(key, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatalf("Decrypt = %q, want %q", got, plaintext)
	}
}

func TestDecryptWrongKey(t *testing.T) {
	key1, _ := GenerateKey()
	key2, _ := GenerateKey()
	ct, err := Encrypt(&key1.PublicKey, []byte("secret"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := Decrypt(key2, ct); err == nil {
		t.Fatal("Decrypt with wrong key succeeded")
	}
}

func TestDecryptTamperedCiphertext(t *testing.T) {
	key, _ := GenerateKey()
	ct, err := Encrypt(&key.PublicKey, []byte("secret"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	ct[len(ct)-1] ^= 0xFF
	if _, err := Decrypt(key, ct); err == nil {
		t.Fatal("Decrypt accepted tampered ciphertext")
	}
}

func TestDecryptTruncated(t *testing.T) {
	key, _ := GenerateKey()
	for _, n := range []int{0, 1, 30, 64, 65, 70} {
		buf := make([]byte, n)
		if _, err := Decrypt(key, buf); err == nil {
			t.Fatalf("Decrypt accepted %d-byte garbage", n)
		}
	}
}

func TestEncryptEmptyPlaintext(t *testing.T) {
	key, _ := GenerateKey()
	ct, err := Encrypt(&key.PublicKey, nil)
	if err != nil {
		t.Fatalf("Encrypt(nil): %v", err)
	}
	got, err := Decrypt(key, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Decrypt of empty plaintext = %q", got)
	}
}

func TestEncryptNondeterministic(t *testing.T) {
	key, _ := GenerateKey()
	ct1, _ := Encrypt(&key.PublicKey, []byte("same"))
	ct2, _ := Encrypt(&key.PublicKey, []byte("same"))
	if bytes.Equal(ct1, ct2) {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

// TestEncryptDecryptProperty exercises the ECIES scheme over arbitrary
// payloads via testing/quick.
func TestEncryptDecryptProperty(t *testing.T) {
	key, _ := GenerateKey()
	roundTrip := func(data []byte) bool {
		ct, err := Encrypt(&key.PublicKey, data)
		if err != nil {
			return false
		}
		got, err := Decrypt(key, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSignVerifyProperty exercises sign/verify over arbitrary messages.
func TestSignVerifyProperty(t *testing.T) {
	key, _ := GenerateKey()
	prop := func(msg []byte) bool {
		sig, err := Sign(key, msg)
		if err != nil {
			return false
		}
		return Verify(&key.PublicKey, msg, sig) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDigestDeterministic(t *testing.T) {
	a := Digest([]byte("a"), []byte("b"))
	b := Digest([]byte("a"), []byte("b"))
	if !bytes.Equal(a, b) {
		t.Fatal("Digest is not deterministic")
	}
	if len(a) != DigestSize {
		t.Fatalf("Digest size = %d, want %d", len(a), DigestSize)
	}
	c := Digest([]byte("ab"))
	if !bytes.Equal(a, c) {
		t.Fatal("Digest over split parts differs from concatenation")
	}
	if bytes.Equal(a, Digest([]byte("x"))) {
		t.Fatal("distinct inputs collide")
	}
}

func TestDigestHex(t *testing.T) {
	h := DigestHex([]byte("hello"))
	if len(h) != 2*DigestSize {
		t.Fatalf("DigestHex length = %d", len(h))
	}
}

func TestNewNonceUnique(t *testing.T) {
	n1, err := NewNonce()
	if err != nil {
		t.Fatalf("NewNonce: %v", err)
	}
	n2, err := NewNonce()
	if err != nil {
		t.Fatalf("NewNonce: %v", err)
	}
	if len(n1) != NonceSize || len(n2) != NonceSize {
		t.Fatal("nonce has wrong size")
	}
	if bytes.Equal(n1, n2) {
		t.Fatal("two nonces are identical")
	}
}

func TestHKDFSizes(t *testing.T) {
	secret := []byte("shared-secret")
	for _, size := range []int{1, 16, 32, 33, 64, 100} {
		out := hkdfSHA256(secret, []byte("salt"), []byte("info"), size)
		if len(out) != size {
			t.Fatalf("hkdfSHA256 size %d returned %d bytes", size, len(out))
		}
	}
	a := hkdfSHA256(secret, []byte("salt"), []byte("info"), 32)
	b := hkdfSHA256(secret, []byte("salt"), []byte("other"), 32)
	if bytes.Equal(a, b) {
		t.Fatal("hkdf output does not depend on info")
	}
	c := hkdfSHA256(secret, nil, []byte("info"), 32)
	if len(c) != 32 {
		t.Fatal("hkdf with empty salt failed")
	}
}

func BenchmarkSign(b *testing.B) {
	key, _ := GenerateKey()
	msg := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(key, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	key, _ := GenerateKey()
	msg := make([]byte, 1024)
	sig, _ := Sign(key, msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(&key.PublicKey, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncrypt1KiB(b *testing.B) {
	key, _ := GenerateKey()
	msg := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(&key.PublicKey, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt1KiB(b *testing.B) {
	key, _ := GenerateKey()
	msg := make([]byte, 1024)
	ct, _ := Encrypt(&key.PublicKey, msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decrypt(key, ct); err != nil {
			b.Fatal(err)
		}
	}
}
