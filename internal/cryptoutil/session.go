package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// sessionInfo domain-separates sessioned AEAD keys from the classic
// per-query ECIES keys (eciesInfo) and from any other use of the shared
// secret. The trailing NUL keeps the generation/context suffix from
// colliding with a longer prefix.
var sessionInfo = []byte("interop-ecies-session-v1\x00")

// DefaultSessionTTL is how long a session ephemeral key (and the ECDH
// secrets agreed under it) lives before SessionManager rotates to a fresh
// generation. Short enough that a leaked session key exposes only a few
// seconds of traffic; long enough that a warm poller amortizes the
// variable-base scalar multiplication across many windows.
const DefaultSessionTTL = 10 * time.Second

// OpCounter tallies expensive crypto operations. All methods are safe for
// concurrent use and safe on a nil receiver, so call sites never need to
// guard the "nobody is counting" case.
type OpCounter struct {
	ecdh    atomic.Uint64
	sign    atomic.Uint64
	encrypt atomic.Uint64
}

// AddECDH records n ECDH scalar multiplications.
func (c *OpCounter) AddECDH(n uint64) {
	if c != nil {
		c.ecdh.Add(n)
	}
}

// AddSign records n ECDSA signing operations.
func (c *OpCounter) AddSign(n uint64) {
	if c != nil {
		c.sign.Add(n)
	}
}

// AddEncrypt records n envelope encryptions (classic ECIES or sessioned
// AEAD seals).
func (c *OpCounter) AddEncrypt(n uint64) {
	if c != nil {
		c.encrypt.Add(n)
	}
}

// ECDHOps returns the ECDH scalar multiplication count.
func (c *OpCounter) ECDHOps() uint64 {
	if c == nil {
		return 0
	}
	return c.ecdh.Load()
}

// SignOps returns the signing operation count.
func (c *OpCounter) SignOps() uint64 {
	if c == nil {
		return 0
	}
	return c.sign.Load()
}

// EncryptOps returns the envelope encryption count.
func (c *OpCounter) EncryptOps() uint64 {
	if c == nil {
		return 0
	}
	return c.encrypt.Load()
}

// SessionManager amortizes the expensive half of ECIES. Classic Encrypt
// burns one ephemeral P-256 keygen plus one variable-base ECDH scalar
// multiplication per envelope; a SessionManager instead holds one ephemeral
// key per generation (rotated on a TTL) and caches the ECDH secret per
// requester label, so sealing N envelopes for R distinct requesters inside
// a generation costs one keygen plus R agreements instead of 2N scalar
// multiplications. Confidentiality stays per-query: each envelope's AEAD
// key is derived from the cached secret via HKDF with a domain-separated
// info string bound to the generation and a caller-supplied context
// (the query digest), so no two queries share an AEAD key.
//
// The requester label must identify the requester's certificate, not just
// its public key — a requester whose certificate rotates mid-session gets
// a fresh agreement rather than silently reusing a secret across
// identities.
type SessionManager struct {
	ttl     time.Duration
	now     func() time.Time
	counter *OpCounter

	mu         sync.Mutex
	generation uint64
	priv       *ecdh.PrivateKey
	pub        []byte // uncompressed point of priv's public key
	born       time.Time
	secrets    map[string][]byte // requester label -> ECDH secret, current generation only
}

// NewSessionManager builds a session manager that rotates its ephemeral key
// every ttl (DefaultSessionTTL when ttl <= 0) and, when counter is non-nil,
// records every real ECDH agreement it performs.
func NewSessionManager(ttl time.Duration, counter *OpCounter) *SessionManager {
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	return &SessionManager{ttl: ttl, now: time.Now, counter: counter}
}

// SessionKey is the per-(generation, requester) sealing state handed out by
// a SessionManager. It is immutable and safe for concurrent use.
type SessionKey struct {
	// Ephemeral is the uncompressed session public point the recipient
	// needs to run its half of the agreement. It travels in explicit wire
	// fields, not inline in the envelope.
	Ephemeral []byte
	// Generation is the session generation counter, bound into the AEAD
	// key derivation so envelopes from different generations can never be
	// confused even if an ephemeral key were ever reused.
	Generation uint64

	secret []byte
}

// KeyFor returns sealing state for the requester identified by label (the
// requester's certificate digest) holding pub. A warm hit — same label,
// same generation — performs zero scalar multiplications. A cold label
// performs one ECDH agreement; an expired generation first rotates the
// ephemeral key and drops all cached secrets.
func (m *SessionManager) KeyFor(label string, pub *ecdsa.PublicKey) (*SessionKey, error) {
	if pub == nil {
		return nil, ErrInvalidKey
	}
	m.mu.Lock()
	if m.priv == nil || m.now().Sub(m.born) >= m.ttl {
		if err := m.rotateLocked(); err != nil {
			m.mu.Unlock()
			return nil, err
		}
	}
	if secret, ok := m.secrets[label]; ok {
		key := &SessionKey{Ephemeral: m.pub, Generation: m.generation, secret: secret}
		m.mu.Unlock()
		return key, nil
	}
	priv, ephemeral, generation := m.priv, m.pub, m.generation
	m.mu.Unlock()

	// The variable-base multiplication runs outside the lock so concurrent
	// requesters agree in parallel; the generation recheck below keeps a
	// stale secret from being cached into a newer generation.
	recipient, err := pub.ECDH()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	secret, err := priv.ECDH(recipient)
	if err != nil {
		return nil, fmt.Errorf("session ecdh agreement: %w", err)
	}
	m.counter.AddECDH(1)

	m.mu.Lock()
	if m.generation == generation {
		m.secrets[label] = secret
	}
	m.mu.Unlock()
	return &SessionKey{Ephemeral: ephemeral, Generation: generation, secret: secret}, nil
}

// rotateLocked installs a fresh ephemeral key, bumps the generation and
// forgets every cached secret. Caller holds m.mu.
func (m *SessionManager) rotateLocked() error {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return fmt.Errorf("generate session key: %w", err)
	}
	m.priv = priv
	m.pub = priv.PublicKey().Bytes()
	m.generation++
	m.born = m.now()
	m.secrets = make(map[string][]byte)
	return nil
}

// Seal encrypts plaintext under the per-query AEAD key derived from this
// session key and context (the query digest). The envelope layout is:
//
//	GCM nonce || ciphertext
//
// — deliberately missing the 65-byte point prefix classic Decrypt demands,
// so a sessioned envelope fed to the classic decoder fails cleanly. The
// ephemeral point and generation travel in explicit wire fields instead.
func (k *SessionKey) Seal(context, plaintext []byte) ([]byte, error) {
	aead, err := sessionAEAD(k.secret, k.Ephemeral, k.Generation, context)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("generate gcm nonce: %w", err)
	}
	out := make([]byte, 0, len(nonce)+len(plaintext)+aead.Overhead())
	out = append(out, nonce...)
	out = aead.Seal(out, nonce, plaintext, nil)
	return out, nil
}

// SessionDecrypt opens a sessioned envelope produced by SessionKey.Seal:
// the recipient runs its half of the ECDH agreement against the session
// ephemeral point, re-derives the per-query AEAD key from the generation
// and context, and opens the nonce||ciphertext envelope. Any malformed
// input yields ErrDecrypt.
func SessionDecrypt(priv *ecdsa.PrivateKey, ephemeral []byte, generation uint64, context, ciphertext []byte) ([]byte, error) {
	if priv == nil {
		return nil, ErrInvalidKey
	}
	recipient, err := priv.ECDH()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidKey, err)
	}
	point, err := ecdh.P256().NewPublicKey(ephemeral)
	if err != nil {
		return nil, fmt.Errorf("%w: bad session ephemeral point", ErrDecrypt)
	}
	secret, err := recipient.ECDH(point)
	if err != nil {
		return nil, fmt.Errorf("%w: session ecdh agreement", ErrDecrypt)
	}
	aead, err := sessionAEAD(secret, ephemeral, generation, context)
	if err != nil {
		return nil, err
	}
	if len(ciphertext) < aead.NonceSize() {
		return nil, ErrDecrypt
	}
	nonce, sealed := ciphertext[:aead.NonceSize()], ciphertext[aead.NonceSize():]
	plaintext, err := aead.Open(nil, nonce, sealed, nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plaintext, nil
}

// sessionAEAD derives the per-query AES-256-GCM cipher for a sessioned
// envelope: HKDF-SHA256 over the cached ECDH secret, salted with the
// session ephemeral point, with an info string binding the domain
// separator, the generation and the query context.
func sessionAEAD(secret, ephemeral []byte, generation uint64, context []byte) (cipher.AEAD, error) {
	info := make([]byte, 0, len(sessionInfo)+8+len(context))
	info = append(info, sessionInfo...)
	info = binary.BigEndian.AppendUint64(info, generation)
	info = append(info, context...)
	key := hkdfSHA256(secret, ephemeral, info, 32)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("new aes cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("new gcm: %w", err)
	}
	return aead, nil
}
